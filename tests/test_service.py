"""Tests for the serving layer: fingerprints, plan cache, batch executor."""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.bench.runner import run_comparison
from repro.catalog import analyze
from repro.bench.workloads import WorkloadSpec
from repro.core.base import SearchBudget
from repro.errors import OptimizationBudgetExceeded, ServiceError
from repro.query import JoinGraph, Query
from repro.service import (
    BatchItem,
    OptimizationService,
    PlanCache,
    fingerprint_components,
    optimize_many,
    query_fingerprint,
)
from tests.conftest import make_chain_query, make_star_query

# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_stable_for_same_query(self, small_schema):
        a = make_star_query(small_schema, 5)
        b = make_star_query(small_schema, 5)
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_label_is_ignored(self, small_schema):
        a = make_star_query(small_schema, 5, label="first")
        b = make_star_query(small_schema, 5, label="second")
        assert a.label != b.label
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_relation_listing_order_is_canonicalized(self, small_schema):
        """The same star written down in a different relation order aliases."""
        hub = small_schema.largest_relation().name
        spokes = [n for n in small_schema.relation_names if n != hub][:4]
        from repro.query import star_joins

        joins = star_joins(small_schema, hub, spokes)
        a = Query(small_schema, JoinGraph([hub, *spokes], joins))
        b = Query(
            small_schema, JoinGraph([*reversed(spokes), hub], joins)
        )
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_join_endpoint_order_is_canonicalized(self, small_schema):
        names = list(small_schema.relation_names[:3])
        from repro.query import chain_joins

        joins = chain_joins(small_schema, names)
        flipped = [(r, rc, l, lc) for (l, lc, r, rc) in joins]
        a = Query(small_schema, JoinGraph(names, joins))
        b = Query(small_schema, JoinGraph(names, flipped))
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_implied_transitive_edge_aliases_explicit_one(self, small_schema):
        """A closure-implied predicate and a written-out one fingerprint equal."""
        a, b, c = small_schema.relation_names[:3]
        ca = small_schema.relation(a).columns[0].name
        cb = small_schema.relation(b).columns[0].name
        cc = small_schema.relation(c).columns[0].name
        chain = [(a, ca, b, cb), (b, cb, c, cc)]
        explicit = chain + [(a, ca, c, cc)]
        qa = Query(small_schema, JoinGraph([a, b, c], chain))
        qb = Query(small_schema, JoinGraph([a, b, c], explicit))
        assert query_fingerprint(qa) == query_fingerprint(qb)

    def test_different_topologies_differ(self, small_schema):
        star = make_star_query(small_schema, 5)
        chain = make_chain_query(small_schema, 5)
        assert query_fingerprint(star) != query_fingerprint(chain)

    def test_order_by_is_significant(self, small_schema):
        plain = make_star_query(small_schema, 4)
        rel = plain.graph.relation_names[0]
        pred = plain.graph.predicates[0]
        column = pred.left_column if plain.graph.relation_names[pred.left] == rel else pred.right_column
        ordered = Query(
            small_schema, plain.graph, order_by=(rel, column)
        )
        assert query_fingerprint(plain) != query_fingerprint(ordered)
        assert fingerprint_components(ordered)[-1] == f"{rel}.{column}"

    def test_components_are_name_based(self, small_schema):
        components = fingerprint_components(make_star_query(small_schema, 4))
        assert components[0] == small_schema.name
        assert components[1] == tuple(sorted(components[1]))


class TestFingerprintSelections:
    """Selections are significant, but constants are bucketed."""

    def _selected(self, small_schema, op, value):
        from repro.query import Selection

        base = make_star_query(small_schema, 4)
        rel = base.graph.relation_names[0]
        column = small_schema.relation(rel).columns[0].name
        return Query(
            small_schema,
            base.graph,
            selections=(Selection(rel, column, op, value),),
        )

    def test_selections_are_significant(self, small_schema):
        plain = make_star_query(small_schema, 4)
        selected = self._selected(small_schema, "<", 10.0)
        assert query_fingerprint(plain) != query_fingerprint(selected)

    def test_selection_op_is_significant(self, small_schema):
        lt = self._selected(small_schema, "<", 10.0)
        ge = self._selected(small_schema, ">=", 10.0)
        assert query_fingerprint(lt) != query_fingerprint(ge)

    def test_equality_constants_collapse(self, small_schema):
        a = self._selected(small_schema, "=", 1.0)
        b = self._selected(small_schema, "=", 999.0)
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_range_constants_bucket(self, small_schema):
        base = make_star_query(small_schema, 4)
        rel = base.graph.relation_names[0]
        column = small_schema.relation(rel).columns[0]
        domain = column.domain_size
        # Same 1/16th-of-domain bucket: aliases. Opposite end: differs.
        near = self._selected(small_schema, "<", domain / 32)
        nearer = self._selected(small_schema, "<", domain / 33)
        far = self._selected(small_schema, "<", domain / 2)
        assert query_fingerprint(near) == query_fingerprint(nearer)
        assert query_fingerprint(near) != query_fingerprint(far)

    def test_selections_precede_order_by_component(self, small_schema):
        from repro.query import Selection
        from repro.service.fingerprint import selection_bucket

        base = make_star_query(small_schema, 4)
        rel = base.graph.relation_names[0]
        pred = base.graph.predicates[0]
        order_rel = base.graph.relation_names[pred.left]
        column = small_schema.relation(rel).columns[0].name
        query = Query(
            small_schema,
            base.graph,
            selections=(Selection(rel, column, "<", 10.0),),
            order_by=(order_rel, pred.left_column),
        )
        components = fingerprint_components(query)
        # ORDER BY stays the last component; selections ride just before.
        assert components[-1] == f"{order_rel}.{pred.left_column}"
        bucket = selection_bucket(query, query.selections[0])
        assert components[-2] == ((f"{rel}.{column}", "<", bucket),)


# ---------------------------------------------------------------------------
# PlanCache
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ServiceError):
            PlanCache(0)

    def test_hit_miss_counters(self):
        cache = PlanCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = PlanCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "a" becomes MRU, so "b" is next out
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_invalidate_drops_everything(self):
        cache = PlanCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 2


# ---------------------------------------------------------------------------
# OptimizationService
# ---------------------------------------------------------------------------


class TestOptimizationService:
    def test_warm_hit_returns_same_plan(self, small_schema, small_stats):
        service = OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        query = make_star_query(small_schema, 6)
        cold = service.optimize(query)
        warm = service.optimize(query)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.cost == cold.cost
        assert warm.rows == cold.rows
        assert warm.plans_costed == cold.plans_costed
        assert repr(warm.plan) == repr(cold.plan)
        assert warm.fingerprint == cold.fingerprint == query_fingerprint(query)
        assert service.cache_stats.hits == 1

    def test_equivalent_query_hits(self, small_schema, small_stats):
        service = OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        service.optimize(make_star_query(small_schema, 6, label="one"))
        again = service.optimize(make_star_query(small_schema, 6, label="two"))
        assert again.cache_hit

    def test_analyze_bumps_epoch_and_invalidates(self, small_schema):
        service = OptimizationService(technique="SDP")
        assert service.stats_epoch == 0
        query = make_star_query(small_schema, 5)
        first = service.optimize(query)  # auto-analyzes -> epoch 1
        assert service.stats_epoch == 1 and first.stats_epoch == 1
        service.analyze(small_schema)
        assert service.stats_epoch == 2
        assert len(service.cache) == 0
        re_optimized = service.optimize(query)
        assert not re_optimized.cache_hit
        assert re_optimized.stats_epoch == 2
        assert service.cache_stats.invalidations == 1

    def test_passing_new_snapshot_invalidates(self, small_schema, small_stats):
        from repro.catalog import analyze

        service = OptimizationService(technique="SDP")
        query = make_star_query(small_schema, 5)
        service.optimize(query, stats=small_stats)
        # Same snapshot object again: cache survives.
        assert service.optimize(query, stats=small_stats).cache_hit
        # A different snapshot object is a statistics refresh.
        fresh = analyze(small_schema)
        assert not service.optimize(query, stats=fresh).cache_hit
        assert service.stats_epoch == 2

    def test_lru_eviction_in_service(self, small_schema, small_stats):
        service = OptimizationService(technique="GOO", cache_capacity=2)
        service.install_statistics(small_stats)
        queries = [make_star_query(small_schema, n) for n in (3, 4, 5)]
        for query in queries:
            service.optimize(query)
        assert len(service.cache) == 2
        assert service.cache_stats.evictions == 1
        assert not service.optimize(queries[0]).cache_hit  # evicted
        assert service.optimize(queries[2]).cache_hit  # still resident

    def test_budget_trips_are_not_cached(self, small_schema, small_stats):
        service = OptimizationService(
            technique="DP", budget=SearchBudget(max_plans_costed=10)
        )
        service.install_statistics(small_stats)
        query = make_star_query(small_schema, 6)
        for _ in range(2):
            with pytest.raises(OptimizationBudgetExceeded):
                service.optimize(query)
        assert len(service.cache) == 0


class TestServiceSql:
    """SQL text through the service: parse target, provenance, caching."""

    def _sql(self, schema, constant=100_000):
        names = schema.relation_names
        return (
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 "
            f"AND {names[0]}.c1 < {constant}"
        )

    def test_sql_matches_query_path(self, small_schema):
        from repro.query import parse_sql

        service = OptimizationService(technique="SDP")
        service.analyze(small_schema)
        sql = self._sql(small_schema)
        from_sql = service.optimize(sql)
        service.cache.invalidate()
        from_query = service.optimize(parse_sql(small_schema, sql))
        assert from_sql.cost == from_query.cost
        assert from_sql.plans_costed == from_query.plans_costed
        assert repr(from_sql.plan) == repr(from_query.plan)

    def test_sql_provenance_attached(self, small_schema):
        service = OptimizationService(technique="SDP")
        service.analyze(small_schema)
        sql = self._sql(small_schema)
        cold = service.optimize(sql)
        assert cold.sql == sql
        assert cold.query is not None
        assert cold.query.selections
        assert cold.tree() is not None  # no query argument needed
        warm = service.optimize(sql)
        assert warm.cache_hit and warm.sql == sql and warm.query is not None

    def test_constants_in_same_bucket_hit_warm_cache(self, small_schema):
        names = small_schema.relation_names
        domain = small_schema.relation(names[0]).columns[0].domain_size
        service = OptimizationService(technique="SDP")
        service.analyze(small_schema)
        cold = service.optimize(self._sql(small_schema, domain // 32))
        warm = service.optimize(self._sql(small_schema, domain // 32 + 1))
        assert not cold.cache_hit and warm.cache_hit
        # The hit still reports its own submission, not the cached one's.
        assert warm.sql != cold.sql
        assert warm.query.selections[0].value != cold.query.selections[0].value

    def test_sql_without_schema_rejected(self, small_schema, small_stats):
        service = OptimizationService(technique="SDP")
        service.install_statistics(small_stats)  # stats, but no schema
        with pytest.raises(ServiceError, match="schema"):
            service.optimize(self._sql(small_schema))

    def test_explicit_schema_kwarg_parses_text(self, small_schema, small_stats):
        service = OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        result = service.optimize(self._sql(small_schema), schema=small_schema)
        assert result.cost > 0

    def test_schema_kwarg_with_query_rejected(self, small_schema, small_stats):
        service = OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        query = make_star_query(small_schema, 4)
        with pytest.raises(ServiceError, match="SQL text"):
            service.optimize(query, schema=small_schema)


# ---------------------------------------------------------------------------
# optimize_many / parallel grids
# ---------------------------------------------------------------------------


def _grid_key(item: BatchItem):
    if item.result is None:
        return (item.query_index, item.technique, item.label, None)
    return (
        item.query_index,
        item.technique,
        item.label,
        item.result.cost,
        item.result.rows,
        item.result.plans_costed,
        repr(item.result.plan),
    )


class TestOptimizeMany:
    def test_rejects_empty_inputs(self, small_schema, small_stats):
        query = make_star_query(small_schema, 4)
        with pytest.raises(ServiceError):
            optimize_many([], ["SDP"], stats=small_stats)
        with pytest.raises(ServiceError):
            optimize_many([query], [], stats=small_stats)

    def test_parallel_matches_serial_elementwise(self, small_schema, small_stats):
        queries = [make_star_query(small_schema, n) for n in (4, 5, 6)]
        techniques = ["SDP", "GOO"]
        serial = optimize_many(
            queries, techniques, stats=small_stats, workers=1
        )
        parallel = optimize_many(
            queries, techniques, stats=small_stats, workers=2
        )
        assert [[_grid_key(i) for i in row] for row in serial] == [
            [_grid_key(i) for i in row] for row in parallel
        ]

    def test_budget_trips_become_error_cells(self, small_schema, small_stats):
        # On star-7, GOO costs 55 plans and DP 1357: a 100-plan cap trips
        # DP only.
        queries = [make_star_query(small_schema, 7)]
        tight = SearchBudget(max_plans_costed=100)
        for workers in (1, 2):
            grid = optimize_many(
                queries,
                ["DP", "GOO"],
                stats=small_stats,
                budget=tight,
                workers=workers,
            )
            dp, goo = grid[0]
            assert not dp.feasible
            assert isinstance(dp.error, OptimizationBudgetExceeded)
            assert dp.error.resource == "costing"
            assert goo.feasible

    def test_robust_mode_degrades_instead_of_erroring(
        self, small_schema, small_stats
    ):
        grid = optimize_many(
            [make_star_query(small_schema, 7)],
            ["DP"],
            stats=small_stats,
            budget=SearchBudget(max_plans_costed=200),
            workers=2,
            robust=True,
        )
        item = grid[0][0]
        assert item.feasible  # the ladder answered with a cheaper rung
        assert item.result.degraded

    def test_budget_error_survives_pickling(self):
        error = OptimizationBudgetExceeded("costing", 10, 11)
        clone = pickle.loads(pickle.dumps(error))
        assert clone.resource == "costing"
        assert clone.limit == 10 and clone.used == 11
        assert str(clone) == str(error)


class TestParallelComparison:
    def _outcome_key(self, result):
        return {
            name: (
                o.ratios,
                o.plans_costed,
                o.memory_mb,
                o.infeasible_count,
                o.skipped,
                o.fallback_events,
                o.fallback_winners,
            )
            for name, o in result.outcomes.items()
        }

    def test_workers_preserve_outcomes(self, small_schema, small_stats):
        spec = WorkloadSpec("star", 5)
        serial = run_comparison(
            spec, small_schema, ["SDP", "GOO"], 3, stats=small_stats
        )
        parallel = run_comparison(
            spec, small_schema, ["SDP", "GOO"], 3, stats=small_stats, workers=2
        )
        assert serial.reference == parallel.reference
        assert self._outcome_key(serial) == self._outcome_key(parallel)

    def test_workers_preserve_skip_bookkeeping(self, small_schema, small_stats):
        # 600-plan cap: DP (1357 plans on star-7) trips, SDP (454) and
        # GOO (55) stay feasible.
        spec = WorkloadSpec("star", 7)
        tight = SearchBudget(max_plans_costed=600)
        kwargs = dict(
            stats=small_stats,
            budget=tight,
            reference_candidates=("SDP", "GOO"),
            instances=3,
        )
        serial = run_comparison(
            spec, small_schema, ["DP", "SDP", "GOO"], **kwargs
        )
        parallel = run_comparison(
            spec, small_schema, ["DP", "SDP", "GOO"], workers=2, **kwargs
        )
        assert serial.outcomes["DP"].skipped  # DP trips its tight budget
        assert self._outcome_key(serial) == self._outcome_key(parallel)

    def test_workers_preserve_robust_mode(self, small_schema, small_stats):
        spec = WorkloadSpec("star", 7)
        kwargs = dict(
            stats=small_stats,
            budget=SearchBudget(max_plans_costed=600),
            robust=True,
            instances=2,
        )
        serial = run_comparison(spec, small_schema, ["DP", "GOO"], **kwargs)
        parallel = run_comparison(
            spec, small_schema, ["DP", "GOO"], workers=2, **kwargs
        )
        assert serial.outcomes["DP"].fallback_events > 0
        assert self._outcome_key(serial) == self._outcome_key(parallel)


# ---------------------------------------------------------------------------
# Concurrency: cache counters, single-flight, atomic epoch swaps
# ---------------------------------------------------------------------------


def _run_threads(workers):
    threads = [threading.Thread(target=fn) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)


class TestPlanCacheConcurrency:
    def test_counters_are_exact_under_threads(self):
        cache = PlanCache(64)
        for key in range(32):
            cache.put(key, key)
        gets_per_thread = 200

        def reader(offset):
            for index in range(gets_per_thread):
                # Even indices hit the pre-populated keys, odd ones miss.
                if index % 2 == 0:
                    assert cache.get((offset + index) % 32) is not None
                else:
                    assert cache.get(("absent", offset, index)) is None

        _run_threads([lambda i=i: reader(i) for i in range(8)])
        total = 8 * gets_per_thread
        assert cache.stats.hits == total // 2
        assert cache.stats.misses == total // 2

    def test_capacity_is_never_exceeded_under_threads(self):
        cache = PlanCache(16)

        def writer(offset):
            for index in range(200):
                cache.put((offset, index), index)
                cache.get((offset, max(0, index - 1)))

        _run_threads([lambda i=i: writer(i) for i in range(8)])
        assert len(cache) <= 16
        assert cache.stats.evictions == 8 * 200 - len(cache)


class TestSingleFlight:
    def _slow_service(self, small_stats, delay_seconds):
        service = OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        optimizer = service.optimizer
        real = optimizer.optimize
        calls = []

        def slow(query, stats=None, **kwargs):
            calls.append(threading.get_ident())
            time.sleep(delay_seconds)
            return real(query, stats, **kwargs)

        optimizer.optimize = slow
        return service, calls

    def test_miss_storm_coalesces_to_one_search(self, small_schema, small_stats):
        service, calls = self._slow_service(small_stats, delay_seconds=0.3)
        query = make_star_query(small_schema, 5)
        barrier = threading.Barrier(8)
        results = {}

        def request(index):
            barrier.wait(timeout=10.0)
            results[index] = service.optimize(query)

        _run_threads([lambda i=i: request(i) for i in range(8)])
        assert len(calls) == 1  # one leader searched; followers waited
        plans = {repr(result.plan) for result in results.values()}
        assert len(plans) == 1
        assert sum(1 for r in results.values() if not r.cache_hit) == 1
        assert sum(1 for r in results.values() if r.cache_hit) == 7

    def test_follower_timeout_falls_back_to_own_search(
        self, small_schema, small_stats, monkeypatch
    ):
        from repro.service import service as service_module

        monkeypatch.setattr(service_module, "INFLIGHT_WAIT_SECONDS", 0.05)
        service, calls = self._slow_service(small_stats, delay_seconds=0.5)
        query = make_star_query(small_schema, 5)
        results = {}

        def request(index):
            results[index] = service.optimize(query)

        leader = threading.Thread(target=lambda: request(0))
        leader.start()
        for _ in range(200):  # wait until the leader holds the flight
            if calls:
                break
            time.sleep(0.005)
        follower = threading.Thread(target=lambda: request(1))
        follower.start()
        leader.join(timeout=30.0)
        follower.join(timeout=30.0)

        # The follower gave up waiting and computed independently: two
        # searches, identical answers, neither served from cache.
        assert len(calls) == 2
        assert repr(results[0].plan) == repr(results[1].plan)
        assert not results[0].cache_hit and not results[1].cache_hit

    def test_override_path_is_not_single_flighted(
        self, small_schema, small_stats
    ):
        service, calls = self._slow_service(small_stats, delay_seconds=0.0)
        query = make_star_query(small_schema, 5)
        from repro.core.registry import make_optimizer

        override_results = [
            service.optimize(query, optimizer=make_optimizer("GOO"))
            for _ in range(2)
        ]
        # The override never touched the shared optimizer or the cache.
        assert calls == []
        assert all(not r.cache_hit for r in override_results)
        assert len(service.cache) == 0


class TestConcurrentEpochSwap:
    def test_optimize_never_mixes_epochs(self, small_schema):
        service = OptimizationService(technique="SDP")
        service.analyze(small_schema)
        first_epoch = service.stats_epoch
        query = make_star_query(small_schema, 5)
        results = []
        results_lock = threading.Lock()
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                service.install_statistics(analyze(small_schema))
                time.sleep(0.01)

        def request():
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                result = service.optimize(query)
                with results_lock:
                    results.append(result)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            _run_threads([request for _ in range(4)])
        finally:
            stop.set()
            churner.join(timeout=10.0)

        assert results
        final_epoch = service.stats_epoch
        costs = set()
        for result in results:
            assert result.plan is not None
            assert first_epoch <= result.stats_epoch <= final_epoch
            costs.add(result.cost)
        # analyze() of the same schema yields the same statistics, so the
        # answer is epoch-independent even while epochs churn.
        assert len(costs) == 1
