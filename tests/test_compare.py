"""Tests for repro.compare (single-query technique comparison)."""

from __future__ import annotations

import pytest

from repro.compare import ComparisonRow, compare_techniques
from repro.core.base import SearchBudget
from tests.conftest import make_star_query


class TestCompareTechniques:
    def test_rendered_table(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        report = compare_techniques(
            query, ("DP", "SDP", "GOO"), stats=small_stats
        )
        assert isinstance(report, str)
        assert "Cost ratio" in report
        assert "SDP" in report and "GOO" in report

    def test_raw_rows(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        rows = compare_techniques(
            query, ("DP", "SDP"), stats=small_stats, render=False
        )
        assert all(isinstance(r, ComparisonRow) for r in rows)
        dp = next(r for r in rows if r.technique == "DP")
        assert dp.feasible and dp.ratio == pytest.approx(1.0)
        sdp = next(r for r in rows if r.technique == "SDP")
        assert sdp.ratio >= 1.0 - 1e-9

    def test_infeasible_marked(self, schema, stats):
        query = make_star_query(schema, 13)
        rows = compare_techniques(
            query,
            ("DP", "SDP"),
            stats=stats,
            budget=SearchBudget(max_memory_bytes=5_000_000),
            render=False,
        )
        dp = next(r for r in rows if r.technique == "DP")
        assert not dp.feasible and dp.ratio is None
        sdp = next(r for r in rows if r.technique == "SDP")
        assert sdp.feasible

    def test_infeasible_renders_stars(self, schema, stats):
        query = make_star_query(schema, 13)
        report = compare_techniques(
            query,
            ("DP", "SDP"),
            stats=stats,
            budget=SearchBudget(max_memory_bytes=5_000_000),
        )
        assert "*" in report

    def test_auto_stats(self, small_schema):
        query = make_star_query(small_schema, 4)
        report = compare_techniques(query, ("SDP",))
        assert "SDP" in report
