"""Correctness tests for the optimizers (DP, IDP, SDP, GOO).

The key oracle is a naive exhaustive DP (``3^n`` subset splitting over the
same plan space) that certifies the DPccp-based DP optimizer; the heuristics
are then validated against DP: never cheaper, always structurally valid, and
exactly equal where the paper guarantees it (SDP on hub-free graphs).
"""

from __future__ import annotations

import pytest

from repro.core import (
    DynamicProgrammingOptimizer,
    GreedyOptimizer,
    IDPConfig,
    IDPOptimizer,
    SDPConfig,
    SDPOptimizer,
    SearchBudget,
    available_techniques,
    make_optimizer,
)
from repro.core.base import SearchCounters
from repro.core.planspace import PlanSpace
from repro.core.table import JCRTable
from repro.cost.model import DEFAULT_COST_MODEL
from repro.errors import OptimizationBudgetExceeded, OptimizationError
from repro.plans import validate_plan
from repro.query import JoinGraph, Query, cycle_joins, star_joins
from repro.util.bitset import subsets_of
from repro.util.timer import Timer
from tests.conftest import make_chain_query, make_star_chain_query, make_star_query

ALL_OPTIMIZERS = [
    DynamicProgrammingOptimizer(),
    IDPOptimizer(IDPConfig(k=4)),
    IDPOptimizer(IDPConfig(k=7)),
    SDPOptimizer(),
    SDPOptimizer(config=SDPConfig(partitioning="parent")),
    SDPOptimizer(config=SDPConfig(partitioning="global")),
    SDPOptimizer(config=SDPConfig(skyline_option=1)),
    GreedyOptimizer(),
]


def brute_force_optimal_cost(query, stats) -> float:
    """Naive exhaustive DP over the same plan space (levels ascending)."""
    counters = SearchCounters(SearchBudget.unlimited(), Timer().start())
    space = PlanSpace(query, stats, DEFAULT_COST_MODEL, counters)
    table = JCRTable(space.est)
    graph = query.graph
    for index in range(graph.n):
        space.base_jcr(table, index)
    for level in range(2, graph.n + 1):
        for mask in range(1, graph.all_mask + 1):
            if mask.bit_count() != level or not graph.is_connected(mask):
                continue
            for left_mask in subsets_of(mask, proper=True):
                right_mask = mask ^ left_mask
                if left_mask > right_mask:
                    continue
                left = table.get(left_mask)
                right = table.get(right_mask)
                if left is None or right is None:
                    continue
                space.join(table, left, right)
    return space.finalize(table.require(graph.all_mask)).cost


def queries_for_equivalence(small_schema):
    names = list(small_schema.relation_names)
    yield make_chain_query(small_schema, 5)
    yield make_star_query(small_schema, 5)
    yield make_star_chain_query(small_schema, spokes=3, chain=2)
    yield Query(
        small_schema,
        JoinGraph(names[:5], cycle_joins(small_schema, names[:5])),
        label="cycle-5",
    )


class TestDPOptimality:
    def test_matches_naive_exhaustive_dp(self, small_schema, small_stats):
        dp = DynamicProgrammingOptimizer()
        for query in queries_for_equivalence(small_schema):
            expected = brute_force_optimal_cost(query, small_stats)
            got = dp.optimize(query, small_stats).cost
            assert got == pytest.approx(expected), query.label

    def test_single_relation(self, small_schema, small_stats):
        graph = JoinGraph([small_schema.relation_names[0]], [])
        query = Query(small_schema, graph, label="single")
        result = DynamicProgrammingOptimizer().optimize(query, small_stats)
        assert result.plan.is_scan

    def test_two_relations(self, small_schema, small_stats):
        names = list(small_schema.relation_names[:2])
        graph = JoinGraph(names, [(names[0], "c2", names[1], "c3")])
        query = Query(small_schema, graph, label="pair")
        result = DynamicProgrammingOptimizer().optimize(query, small_stats)
        assert result.plan.mask == 0b11

    def test_ordered_query_not_cheaper_than_unordered(
        self, small_schema, small_stats
    ):
        base = make_star_query(small_schema, 5)
        joins = star_joins(
            small_schema,
            base.graph.relation_names[0],
            list(base.graph.relation_names[1:]),
        )
        spoke, column = joins[0][2], joins[0][3]
        ordered = Query(
            small_schema, base.graph, order_by=(spoke, column), label="ordered"
        )
        dp = DynamicProgrammingOptimizer()
        assert (
            dp.optimize(ordered, small_stats).cost
            >= dp.optimize(base, small_stats).cost - 1e-9
        )


class TestHeuristicsSoundness:
    @pytest.mark.parametrize(
        "optimizer", ALL_OPTIMIZERS, ids=lambda o: o.name
    )
    def test_valid_plans_and_never_below_optimal(
        self, optimizer, small_schema, small_stats
    ):
        dp = DynamicProgrammingOptimizer()
        for query in queries_for_equivalence(small_schema):
            result = optimizer.optimize(query, small_stats)
            validate_plan(result.plan, query.graph)
            optimal = dp.optimize(query, small_stats).cost
            assert result.cost >= optimal - 1e-6, (optimizer.name, query.label)

    @pytest.mark.parametrize(
        "optimizer", ALL_OPTIMIZERS, ids=lambda o: o.name
    )
    def test_result_metadata(self, optimizer, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        result = optimizer.optimize(query, small_stats)
        assert result.plans_costed > 0
        assert result.modeled_memory_mb > 0
        assert result.elapsed_seconds >= 0
        assert result.rows >= 1
        tree = result.tree(query)
        assert sorted(tree.leaf_relations()) == sorted(
            query.graph.relation_names
        )


class TestSDP:
    def test_equals_dp_on_hub_free_graphs(self, small_schema, small_stats):
        """No hubs => no pruning => SDP is exhaustive DP (Section 2.1.5)."""
        names = list(small_schema.relation_names)
        chain = make_chain_query(small_schema, 7)
        cycle = Query(
            small_schema,
            JoinGraph(names[:6], cycle_joins(small_schema, names[:6])),
            label="cycle-6",
        )
        dp = DynamicProgrammingOptimizer()
        sdp = SDPOptimizer()
        for query in (chain, cycle):
            assert sdp.optimize(query, small_stats).cost == pytest.approx(
                dp.optimize(query, small_stats).cost
            ), query.label

    def test_prunes_on_stars(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        result = SDPOptimizer().optimize(query, small_stats)
        assert result.jcrs_pruned > 0

    def test_no_pruning_on_chains(self, small_schema, small_stats):
        query = make_chain_query(small_schema, 8)
        result = SDPOptimizer().optimize(query, small_stats)
        assert result.jcrs_pruned == 0

    def test_costs_fewer_plans_than_dp_on_stars(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 8)
        dp = DynamicProgrammingOptimizer().optimize(query, small_stats)
        sdp = SDPOptimizer().optimize(query, small_stats)
        assert sdp.plans_costed < dp.plans_costed / 2

    def test_option1_retains_at_least_option2(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 8)
        opt1 = SDPOptimizer(config=SDPConfig(skyline_option=1)).optimize(
            query, small_stats
        )
        opt2 = SDPOptimizer(config=SDPConfig(skyline_option=2)).optimize(
            query, small_stats
        )
        assert opt1.jcrs_created >= opt2.jcrs_created

    def test_trace_events(self, small_schema, small_stats):
        events = []
        query = make_star_query(small_schema, 6)
        SDPOptimizer(trace=events.append).optimize(query, small_stats)
        assert events
        for event in events:
            assert event["built"] == event["prune_group"] + event["free_group"]
            assert event["survivors"] <= event["built"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SDPConfig(partitioning="diagonal")
        with pytest.raises(ValueError):
            SDPConfig(skyline_option=4)
        with pytest.raises(ValueError):
            SDPConfig(hub_degree=0)
        with pytest.raises(ValueError):
            SDPConfig(pairwise_dimensions=((0, 5),))

    def test_names(self):
        assert SDPOptimizer().name == "SDP"
        assert (
            SDPOptimizer(config=SDPConfig(partitioning="global")).name
            == "SDP/Global"
        )
        assert SDPOptimizer(name="custom").name == "custom"


class TestIDP:
    def test_small_query_equals_dp(self, small_schema, small_stats):
        """n <= k means one full-DP block: IDP must be optimal."""
        query = make_star_query(small_schema, 6)
        dp_cost = DynamicProgrammingOptimizer().optimize(query, small_stats).cost
        idp_cost = IDPOptimizer(IDPConfig(k=7)).optimize(query, small_stats).cost
        assert idp_cost == pytest.approx(dp_cost)

    def test_block_size_balanced(self):
        idp = IDPOptimizer(IDPConfig(k=7, block_policy="balanced"))
        assert idp._block_size(7) == 7
        assert idp._block_size(5) == 5
        size = idp._block_size(23)
        assert 2 <= size <= 7

    def test_block_size_standard(self):
        idp = IDPOptimizer(IDPConfig(k=4, block_policy="standard"))
        assert idp._block_size(10) == 4
        assert idp._block_size(3) == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IDPConfig(k=1)
        with pytest.raises(ValueError):
            IDPConfig(block_policy="chaotic")
        with pytest.raises(ValueError):
            IDPConfig(evaluation="vibes")
        with pytest.raises(ValueError):
            IDPConfig(selection_fraction=0.0)

    def test_evaluation_functions_all_run(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        for evaluation in ("minrows", "mincost", "minsel"):
            config = IDPConfig(k=4, evaluation=evaluation, balloon=False)
            result = IDPOptimizer(config).optimize(query, small_stats)
            validate_plan(result.plan, query.graph)

    def test_name(self):
        assert IDPOptimizer(IDPConfig(k=4)).name == "IDP(4)"


class TestBudgets:
    def test_budget_exceeded_raises(self, schema, stats):
        query = make_star_query(schema, 12)
        tiny = SearchBudget(max_memory_bytes=50_000)
        with pytest.raises(OptimizationBudgetExceeded):
            DynamicProgrammingOptimizer(budget=tiny).optimize(query, stats)

    def test_sdp_survives_where_dp_trips(self, schema, stats):
        query = make_star_query(schema, 12)
        budget = SearchBudget(max_memory_bytes=5_000_000)
        with pytest.raises(OptimizationBudgetExceeded):
            DynamicProgrammingOptimizer(budget=budget).optimize(query, stats)
        result = SDPOptimizer(budget=budget).optimize(query, stats)
        assert result.cost > 0

    def test_auto_analyze_when_stats_omitted(self, small_schema):
        query = make_star_query(small_schema, 4)
        result = SDPOptimizer().optimize(query)
        assert result.cost > 0


class TestRegistry:
    def test_all_advertised_names_construct(self):
        for name in available_techniques():
            optimizer = make_optimizer(name)
            assert optimizer.name == name

    def test_idp_any_k(self):
        assert make_optimizer("IDP(9)").config.k == 9

    def test_unknown_rejected(self):
        with pytest.raises(OptimizationError):
            make_optimizer("QuantumDP")


class TestSDPEither:
    """The extension 'either' mode: union of root and parent survivors."""

    def test_registry(self):
        optimizer = make_optimizer("SDP(either)")
        assert optimizer.name == "SDP(either)"

    def test_no_worse_than_the_best_single_mode_here(
        self, small_schema, small_stats
    ):
        # Not a theorem (skyline pruning is not monotone in its input), but
        # a strong regression signal on a fixed query: the union retains a
        # superset per level, which on this instance reaches the same or a
        # better plan than either single mode.
        query = make_star_query(small_schema, 8)
        either = SDPOptimizer(
            config=SDPConfig(partitioning="either")
        ).optimize(query, small_stats)
        singles = [
            SDPOptimizer(config=SDPConfig(partitioning=mode))
            .optimize(query, small_stats)
            .cost
            for mode in ("root", "parent")
        ]
        assert either.cost <= min(singles) + 1e-9

    def test_sound(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        either = SDPOptimizer(
            config=SDPConfig(partitioning="either")
        ).optimize(query, small_stats)
        validate_plan(either.plan, query.graph)
        optimal = DynamicProgrammingOptimizer().optimize(query, small_stats)
        assert either.cost >= optimal.cost - 1e-6
