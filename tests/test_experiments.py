"""Integration tests: every experiment module runs end to end (tiny scale)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import EXPERIMENTS
from repro.bench.experiments import (
    figure_2_2,
    table_2_1,
    table_2_2,
    table_3_3,
)
from repro.bench.experiments.common import (
    ExperimentSettings,
    cached_comparison,
    clear_caches,
    paper_catalog,
    scaleup_catalog,
)
from repro.bench.workloads import WorkloadSpec

TINY = ExperimentSettings(instances=2, heavy_instances=1, max_seconds=10.0)

#: Experiments cheap enough to run end-to-end in the unit-test suite. The
#: heavier ones (whole-table sweeps over 20+-relation graphs) run in
#: ``benchmarks/``.
FAST_EXPERIMENTS = [
    "table-1.1",
    "table-1.2",
    "figure-2.2",
    "table-2.2",
    "table-2.3",
    "table-3.6",
]


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestCommon:
    def test_settings_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_INSTANCES", "33")
        monkeypatch.setenv("REPRO_BENCH_SEED", "9")
        settings = ExperimentSettings.from_env()
        assert settings.instances == 33
        assert settings.seed == 9

    def test_scaled(self):
        assert TINY.scaled(5).instances == 5

    def test_budget_reflects_settings(self):
        budget = TINY.budget()
        assert budget.max_seconds == 10.0
        assert budget.max_memory_bytes == TINY.memory_budget_bytes

    def test_paper_catalog_cached(self):
        a = paper_catalog(TINY)
        b = paper_catalog(TINY)
        assert a[0] is b[0]

    def test_scaleup_catalog_size(self):
        schema, stats = scaleup_catalog(TINY, 30)
        assert len(schema) == 30
        assert len(stats) == 30

    def test_comparison_memoized(self):
        spec = WorkloadSpec("chain", 5, seed=0)
        a = cached_comparison(TINY, spec, ["SDP"], 1)
        b = cached_comparison(TINY, spec, ["SDP"], 1)
        assert a is b


class TestExperimentRegistry:
    def test_all_have_title_and_run(self):
        for name, module in EXPERIMENTS.items():
            assert hasattr(module, "TITLE"), name
            assert callable(module.run), name
            assert callable(module.main), name

    def test_ids_follow_paper_numbering(self):
        assert set(EXPERIMENTS) >= {
            "table-1.1",
            "table-2.1",
            "table-3.1",
            "table-3.6",
            "figure-1.2",
            "figure-2.2",
        }


@pytest.mark.parametrize("name", FAST_EXPERIMENTS)
def test_experiment_runs(name):
    report = EXPERIMENTS[name].run(TINY)
    assert EXPERIMENTS[name].TITLE.split(":")[0] in report


class TestSpecificExperiments:
    def test_table_2_2_matches_paper(self):
        report = table_2_2.run(TINY)
        assert "matches the paper" in report
        membership = table_2_2.pairwise_membership()
        assert not any(membership["135"].values())

    def test_figure_2_2_example_graph(self):
        query = figure_2_2.example_query(TINY)
        graph = query.graph
        assert graph.n == 9
        assert len(graph.hubs()) == 2
        hub_degrees = sorted(graph.degree(h) for h in graph.hubs())
        assert hub_degrees == [3, 4]

    def test_table_2_1_reduced_sweep(self, monkeypatch):
        monkeypatch.setattr(table_2_1, "CHAIN_SIZES", (4, 6))
        monkeypatch.setattr(table_2_1, "STAR_SIZES", (4, 6))
        report = table_2_1.run(TINY)
        assert "Chain Time" in report
        assert report.count("\n") > 5

    def test_table_3_3_narrow_range(self):
        report = table_3_3.run(TINY, ranges=(("SDP", 8, 10),))
        assert "SDP" in report
        assert "Max star relations" in report
