"""Every ``ReproError`` subclass must survive a pickle round trip.

Errors cross process boundaries (batch workers) and thread boundaries
(front-door futures); an exception whose custom constructor breaks the
default ``cls(*args)`` replay surfaces as an opaque ``PicklingError`` at
the worst possible moment. This test walks the *live* exception
hierarchy — so a newly added subclass is covered automatically — and
asserts type, message, and structured fields all survive.
"""

from __future__ import annotations

import pickle

import pytest

# Importing the package pulls in every module that defines ReproError
# subclasses, including the sanctioned fault taxonomy in
# repro.robust.faults.
import repro  # noqa: F401
from repro.errors import ReproError

#: Constructor arguments for classes whose __init__ is not (message,).
_SAMPLE_ARGS = {
    "OptimizationBudgetExceeded": ("costing", 1000.0, 1001.0),
    "InjectedBudgetExceeded": ("costing", 5.0, 6.0),
    "AdmissionRejected": ("queue-full", "admission queue at capacity (8)"),
    "TenantBudgetExhausted": ("tenant-9", 0.125),
    "WorkerCrashFault": (3, "SDP"),
}


def _all_error_classes() -> list[type]:
    seen: set[type] = set()

    def walk(cls: type) -> None:
        for sub in cls.__subclasses__():
            if sub not in seen:
                seen.add(sub)
                walk(sub)

    walk(ReproError)
    return sorted(seen, key=lambda cls: cls.__name__)


def _sample(cls: type) -> ReproError:
    args = _SAMPLE_ARGS.get(cls.__name__, (f"synthetic {cls.__name__}",))
    return cls(*args)


@pytest.mark.parametrize("cls", _all_error_classes(), ids=lambda c: c.__name__)
def test_round_trip_preserves_everything(cls):
    original = _sample(cls)
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is cls
    assert str(clone) == str(original)
    assert clone.__dict__ == original.__dict__


def test_hierarchy_walk_found_the_serving_errors():
    """The walk covers the classes this PR leans on (guards the walker)."""
    names = {cls.__name__ for cls in _all_error_classes()}
    assert {
        "AdmissionRejected",
        "TenantBudgetExhausted",
        "WorkerCrashFault",
        "OptimizationBudgetExceeded",
        "OptimizationCancelled",
    } <= names


def test_extra_attributes_travel_too():
    """__reduce__ carries the instance dict, not just constructor args."""
    original = _sample_with_annotation()
    clone = pickle.loads(pickle.dumps(original))
    assert clone.query_label == "star-12"
    assert clone.reason == "queue-full"


def _sample_with_annotation():
    from repro.errors import AdmissionRejected

    exc = AdmissionRejected("queue-full", "capacity 8")
    exc.query_label = "star-12"
    return exc
