"""Tests for the DPccp enumerator, validated against brute force."""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpccp import connected_subgraphs, csg_cmp_pairs
from repro.util.bitset import bit_indices, subsets_of


def brute_connected_subsets(neighbors: list[int]) -> set[int]:
    n = len(neighbors)
    out = set()
    for mask in range(1, 1 << n):
        if _connected(neighbors, mask):
            out.add(mask)
    return out


def _connected(neighbors: list[int], mask: int) -> bool:
    start = mask & -mask
    seen = start
    frontier = start
    while frontier:
        grow = 0
        rest = seen
        while rest:
            bit = rest & -rest
            grow |= neighbors[bit.bit_length() - 1]
            rest ^= bit
        grow &= mask & ~seen
        if not grow:
            break
        seen |= grow
        frontier = grow
    return seen == mask


def brute_ccp(neighbors: list[int]) -> set[tuple[int, int]]:
    """All unordered csg-cmp pairs, normalized to min(S1) < min(S2)."""
    connected = brute_connected_subsets(neighbors)
    pairs = set()
    for union in connected:
        if union.bit_count() < 2:
            continue
        for s1 in subsets_of(union, proper=True):
            s2 = union ^ s1
            if s1 > s2:
                continue  # count each unordered split once
            if s1 not in connected or s2 not in connected:
                continue
            if not _edge_between(neighbors, s1, s2):
                continue
            lo1 = s1 & -s1
            lo2 = s2 & -s2
            pairs.add((s1, s2) if lo1 < lo2 else (s2, s1))
    return pairs


def _edge_between(neighbors: list[int], a: int, b: int) -> bool:
    rest = a
    while rest:
        bit = rest & -rest
        if neighbors[bit.bit_length() - 1] & b:
            return True
        rest ^= bit
    return False


def random_connected_graph(draw, n: int) -> list[int]:
    neighbors = [0] * n
    # spanning tree first
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        neighbors[node] |= 1 << parent
        neighbors[parent] |= 1 << node
    # random extra edges
    for a, b in combinations(range(n), 2):
        if draw(st.booleans()):
            neighbors[a] |= 1 << b
            neighbors[b] |= 1 << a
    return neighbors


def star(n: int) -> list[int]:
    neighbors = [0] * n
    for spoke in range(1, n):
        neighbors[0] |= 1 << spoke
        neighbors[spoke] = 1
    return neighbors


def chain(n: int) -> list[int]:
    neighbors = [0] * n
    for i in range(n - 1):
        neighbors[i] |= 1 << (i + 1)
        neighbors[i + 1] |= 1 << i
    return neighbors


class TestConnectedSubgraphs:
    def test_chain_counts(self):
        # contiguous ranges: n (n + 1) / 2
        for n in (2, 4, 6):
            got = set(connected_subgraphs(chain(n)))
            assert len(got) == n * (n + 1) // 2

    def test_star_counts(self):
        # singletons + (hub with any nonempty spoke subset)
        for n in (3, 5, 7):
            got = set(connected_subgraphs(star(n)))
            assert len(got) == n + (1 << (n - 1)) - 1

    def test_matches_brute_force_on_star(self):
        neighbors = star(5)
        assert set(connected_subgraphs(neighbors)) == brute_connected_subsets(
            neighbors
        )

    def test_no_duplicates(self):
        listing = list(connected_subgraphs(star(6)))
        assert len(listing) == len(set(listing))

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=7), st.data())
    def test_matches_brute_force_random(self, n, data):
        neighbors = random_connected_graph(data.draw, n)
        got = list(connected_subgraphs(neighbors))
        assert len(got) == len(set(got))
        assert set(got) == brute_connected_subsets(neighbors)


class TestCsgCmpPairs:
    def test_two_relations(self):
        assert set(csg_cmp_pairs(chain(2))) == {(1, 2)}

    def test_pairs_are_valid(self):
        neighbors = star(6)
        for s1, s2 in csg_cmp_pairs(neighbors):
            assert s1 & s2 == 0
            assert _connected(neighbors, s1)
            assert _connected(neighbors, s2)
            assert _edge_between(neighbors, s1, s2)

    def test_matches_brute_force_on_star_and_chain(self):
        for neighbors in (star(6), chain(6)):
            got = list(csg_cmp_pairs(neighbors))
            assert len(got) == len(set(got))
            normalized = {
                (a, b) if (a & -a) < (b & -b) else (b, a) for a, b in got
            }
            assert normalized == brute_ccp(neighbors)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.data())
    def test_matches_brute_force_random(self, n, data):
        neighbors = random_connected_graph(data.draw, n)
        got = list(csg_cmp_pairs(neighbors))
        assert len(got) == len(set(got))
        normalized = {
            (a, b) if (a & -a) < (b & -b) else (b, a) for a, b in got
        }
        assert normalized == brute_ccp(neighbors)

    def test_every_connected_set_reachable(self):
        """Every connected set of size >= 2 appears as some pair's union."""
        neighbors = star(5)
        unions = {s1 | s2 for s1, s2 in csg_cmp_pairs(neighbors)}
        expected = {
            m for m in brute_connected_subsets(neighbors) if m.bit_count() >= 2
        }
        assert unions == expected

    def test_min_convention(self):
        for s1, s2 in csg_cmp_pairs(star(5)):
            assert (s1 & -s1) < (s2 & -s2)

    def test_star_pair_count_formula(self):
        # each ccp pairs the hub-set with a single spoke (or spoke with hub-set)
        n = 6
        got = len(list(csg_cmp_pairs(star(n))))
        # (hub + S) vs spoke t not in S: choose S (possibly empty) among the
        # other n-2 spokes => (n-1) * 2^(n-2); each unordered pair counted once.
        assert got == (n - 1) * (1 << (n - 2))


def clique(n: int) -> list[int]:
    full = (1 << n) - 1
    return [full & ~(1 << i) for i in range(n)]


def cycle(n: int) -> list[int]:
    neighbors = [0] * n
    for i in range(n):
        neighbors[i] |= 1 << ((i + 1) % n)
        neighbors[(i + 1) % n] |= 1 << i
    return neighbors


def naive_split_pair_count(neighbors: list[int]) -> int:
    """CCP count by the 3^n method DPccp exists to avoid.

    For every connected union, try *every* proper nonempty subset as the
    left half — the naive System-R-style split — and count the splits
    whose halves are connected and edge-linked. Each unordered pair is
    counted once (the subset enumeration visits both orientations; keep
    the one where the left half holds the union's minimum bit).
    """
    connected = brute_connected_subsets(neighbors)
    count = 0
    for union in connected:
        if union.bit_count() < 2:
            continue
        low = union & -union
        for s1 in subsets_of(union, proper=True):
            if not s1 & low:
                continue  # orientation dedup: left half keeps the min bit
            s2 = union ^ s1
            if (
                s1 in connected
                and s2 in connected
                and _edge_between(neighbors, s1, s2)
            ):
                count += 1
    return count


class TestPairCountIdentity:
    """DPccp must emit exactly as many ccps as naive subset splitting.

    This is the enumerator's whole contract: same pair population as the
    3^n method, produced in time proportional to the pair count. The DP
    optimizer charges its pair budget from this stream, so an over- or
    under-count would silently skew every budget-trip experiment.
    """

    def test_chain_counts_match_naive_splitting(self):
        for n in range(2, 8):
            neighbors = chain(n)
            assert (
                len(list(csg_cmp_pairs(neighbors)))
                == naive_split_pair_count(neighbors)
            )

    def test_star_counts_match_naive_splitting(self):
        for n in range(2, 8):
            neighbors = star(n)
            assert (
                len(list(csg_cmp_pairs(neighbors)))
                == naive_split_pair_count(neighbors)
            )

    def test_clique_counts_match_naive_splitting(self):
        for n in range(2, 7):
            neighbors = clique(n)
            got = len(list(csg_cmp_pairs(neighbors)))
            assert got == naive_split_pair_count(neighbors)
            # Closed form for cliques: every union of size k >= 2 is
            # connected and every split is valid => sum C(n,k) * (2^(k-1)-1).
            from math import comb

            expected = sum(
                comb(n, k) * ((1 << (k - 1)) - 1) for k in range(2, n + 1)
            )
            assert got == expected

    def test_cycle_counts_match_naive_splitting(self):
        for n in range(3, 8):
            neighbors = cycle(n)
            assert (
                len(list(csg_cmp_pairs(neighbors)))
                == naive_split_pair_count(neighbors)
            )

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.data())
    def test_random_graph_counts_match_naive_splitting(self, n, data):
        neighbors = random_connected_graph(data.draw, n)
        assert (
            len(list(csg_cmp_pairs(neighbors)))
            == naive_split_pair_count(neighbors)
        )


def test_bit_indices_helper_consistency():
    assert bit_indices(0b101001) == [0, 3, 5]
