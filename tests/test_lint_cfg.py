"""Unit tests for the lint CFG builder and the forward-dataflow solver.

These pin down the graph shapes the RL009–RL012 checkers rely on:
branch joins, loop back edges, ``try``/``finally`` exception paths, and
``return``-through-``finally`` routing. The dataflow half is exercised
with a tiny reaching-assignments analysis — enough to prove the solver
iterates to a fixpoint in reverse postorder and that may-facts union at
joins.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.lint import (
    UNREACHED,
    ForwardAnalysis,
    build_cfg,
    iter_functions,
    solve_forward,
)

pytestmark = pytest.mark.lint


def cfg_of(source: str, name: str | None = None):
    tree = ast.parse(textwrap.dedent(source))
    funcs = dict(iter_functions(tree))
    if name is None:
        assert len(funcs) == 1, sorted(funcs)
        return build_cfg(next(iter(funcs.values())))
    return build_cfg(funcs[name])


def block_of(cfg, node_type, lineno: int | None = None):
    """The unique block holding a statement of ``node_type``."""
    hits = [
        b for b in cfg.blocks
        if b.statement is not None
        and isinstance(b.statement, node_type)
        and (lineno is None or b.statement.lineno == lineno)
    ]
    assert len(hits) == 1, [b.index for b in hits]
    return hits[0]


def reachable_from(cfg, start: int) -> set[int]:
    seen = {start}
    stack = [start]
    while stack:
        for succ in cfg.blocks[stack.pop()].successors:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


class TestCfgShapes:
    def test_straight_line_chains_to_exit(self):
        cfg = cfg_of("""\
            def f(x):
                a = x + 1
                b = a * 2
                return b
        """)
        assert cfg.entry == 0 and cfg.exit == 1
        # entry -> a -> b -> return -> exit, single successor each
        path = [cfg.entry]
        while path[-1] != cfg.exit:
            succs = cfg.blocks[path[-1]].successors
            assert len(succs) == 1
            path.append(succs[0])
        assert len(path) == 5  # entry + three statements + exit

    def test_if_else_branches_rejoin(self):
        cfg = cfg_of("""\
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
        """)
        header = block_of(cfg, ast.If)
        assert len(header.successors) == 2
        ret = block_of(cfg, ast.Return)
        # both arms flow into the return
        assert len(cfg.predecessors()[ret.index]) == 2

    def test_while_loop_has_back_edge(self):
        cfg = cfg_of("""\
            def f(n):
                while n:
                    n = n - 1
                return n
        """)
        header = block_of(cfg, ast.While)
        body = block_of(cfg, ast.Assign)
        assert header.index in body.successors  # the back edge
        assert len(header.successors) == 2  # body + fall-through

    def test_break_and_continue_route_to_loop_edges(self):
        cfg = cfg_of("""\
            def f(items):
                for item in items:
                    if item:
                        break
                    continue
                return 0
        """)
        header = block_of(cfg, ast.For)
        brk = block_of(cfg, ast.Break)
        cont = block_of(cfg, ast.Continue)
        ret = block_of(cfg, ast.Return)
        # continue jumps straight back to the loop header
        assert cont.successors == [header.index]
        # break leaves the loop: the return is reachable from it, the
        # loop header is not re-entered on that path
        assert ret.index in reachable_from(cfg, brk.index)
        assert header.index not in brk.successors

    def test_raise_with_no_handler_exits(self):
        cfg = cfg_of("""\
            def f():
                raise ValueError("boom")
        """)
        raiser = block_of(cfg, ast.Raise)
        assert raiser.successors == [cfg.exit]

    def test_try_statement_edges_into_handler(self):
        cfg = cfg_of("""\
            def f(x):
                try:
                    y = x()
                except ValueError:
                    y = 0
                return y
        """)
        tried = block_of(cfg, ast.Assign, lineno=3)
        handler_body = block_of(cfg, ast.Assign, lineno=5)
        # the tried statement reaches the handler body via its
        # exception edge (through the dispatch block)
        assert handler_body.index in reachable_from(cfg, tried.index)
        # and the dispatched exception does NOT fall off the function:
        # ValueError-only handlers keep an unhandled edge to exit
        dispatch = cfg.blocks[
            next(s for s in tried.successors
                 if cfg.blocks[s].statement is None)
        ]
        assert cfg.exit in dispatch.successors

    def test_catch_all_handler_has_no_unhandled_edge(self):
        cfg = cfg_of("""\
            def f(x):
                try:
                    y = x()
                except Exception:
                    y = 0
                return y
        """)
        tried = block_of(cfg, ast.Assign, lineno=3)
        dispatch = cfg.blocks[
            next(s for s in tried.successors
                 if cfg.blocks[s].statement is None)
        ]
        assert cfg.exit not in dispatch.successors

    def test_finally_runs_on_exception_path(self):
        cfg = cfg_of("""\
            def f(x):
                try:
                    y = x()
                finally:
                    cleanup()
                return y
        """)
        fin = block_of(cfg, ast.Expr, lineno=5)
        ret = block_of(cfg, ast.Return)
        # a propagating exception re-raises out of the finally...
        assert cfg.exit in fin.successors
        # ...and normal completion continues to the return
        assert ret.index in reachable_from(cfg, fin.index)

    def test_return_routes_through_finally(self):
        cfg = cfg_of("""\
            def f(x):
                try:
                    return x
                finally:
                    cleanup()
        """)
        ret = block_of(cfg, ast.Return)
        fin = block_of(cfg, ast.Expr)
        # the return may not skip the finally body on its way out
        assert len(ret.successors) == 1
        assert fin.index in reachable_from(cfg, ret.successors[0])
        assert cfg.exit in fin.successors

    def test_with_body_is_linked(self):
        cfg = cfg_of("""\
            def f(lock):
                with lock:
                    x = 1
                return x
        """)
        header = block_of(cfg, ast.With)
        body = block_of(cfg, ast.Assign)
        ret = block_of(cfg, ast.Return)
        assert body.index in header.successors
        assert ret.index in body.successors

    def test_reverse_postorder_starts_at_entry_covers_graph(self):
        cfg = cfg_of("""\
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                while a:
                    a = a - 1
                return a
        """)
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry
        assert len(order) == len(set(order))
        assert set(order) == reachable_from(cfg, cfg.entry)
        assert cfg.exit in order


class TestIterFunctions:
    def test_module_functions_and_methods_qualified(self):
        tree = ast.parse(textwrap.dedent("""\
            def top():
                pass

            class Box:
                def get(self):
                    pass

                def put(self, v):
                    pass
        """))
        names = [qualname for qualname, _ in iter_functions(tree)]
        assert names == ["top", "Box.get", "Box.put"]


class _ReachingAssigns(ForwardAnalysis):
    """Which variable names may have been assigned on some path."""

    def initial(self):
        return frozenset()

    def join(self, left, right):
        return left | right

    def transfer(self, block, fact):
        stmt = block.statement
        if isinstance(stmt, ast.Assign):
            names = frozenset(
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            )
            return fact | names
        return fact


class TestForwardSolver:
    def test_branch_join_unions_facts(self):
        cfg = cfg_of("""\
            def f(x):
                if x:
                    a = 1
                else:
                    b = 2
                return 0
        """)
        solution = solve_forward(cfg, _ReachingAssigns())
        assert solution.exit_fact() == frozenset({"a", "b"})

    def test_loop_reaches_fixpoint(self):
        cfg = cfg_of("""\
            def f(n):
                while n:
                    a = 1
                    n = n - 1
                return n
        """)
        solution = solve_forward(cfg, _ReachingAssigns())
        assert solution.exit_fact() == frozenset({"a", "n"})
        # the back edge feeds the body's facts into the header
        header = block_of(cfg, ast.While)
        assert "a" in solution.before(header.index)

    def test_exception_path_fact_reaches_exit(self):
        cfg = cfg_of("""\
            def f(x):
                a = 1
                if x:
                    raise ValueError("no")
                b = 2
                return b
        """)
        solution = solve_forward(cfg, _ReachingAssigns())
        # "a" reaches the exit along the raise edge even though "b"
        # only reaches along the normal path; may-union keeps both.
        assert solution.exit_fact() == frozenset({"a", "b"})

    def test_unreachable_code_stays_unreached(self):
        cfg = cfg_of("""\
            def f():
                return 1
                a = 2
        """)
        solution = solve_forward(cfg, _ReachingAssigns())
        dead = block_of(cfg, ast.Assign)
        assert solution.before(dead.index) is UNREACHED
        assert solution.after(dead.index) is UNREACHED

    def test_finally_sees_both_paths(self):
        cfg = cfg_of("""\
            def f(x):
                try:
                    a = x()
                finally:
                    done = 1
                return a
        """)
        solution = solve_forward(cfg, _ReachingAssigns())
        fin = block_of(cfg, ast.Assign, lineno=5)
        assert "done" in solution.after(fin.index)
        # the re-raise edge carries "done" (but not necessarily "b"-
        # style normal-path facts) straight to exit
        assert solution.exit_fact() >= frozenset({"done"})
