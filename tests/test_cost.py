"""Tests for repro.cost: model, selectivity, cardinality, scans, sorts, joins."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.statistics import ColumnStats, TableStats
from repro.cost import (
    DEFAULT_COST_MODEL,
    CardinalityEstimator,
    CostModel,
    eclass_selectivity,
    hash_join_cost,
    index_lookup_cost,
    index_nestloop_cost,
    index_scan_full_cost,
    merge_join_cost,
    nestloop_cost,
    predicate_selectivity,
    seq_scan_cost,
    sort_cost,
)
from repro.errors import CatalogError
from repro.query import JoinGraph

CM = DEFAULT_COST_MODEL


def col(n_distinct=100, mcf=0.01, index=False, domain=100):
    return ColumnStats(
        name="c",
        n_distinct=n_distinct,
        most_common_frac=mcf,
        width=4,
        has_index=index,
        domain_size=domain,
    )


def table(rows=10_000, pages=100):
    return TableStats(
        name="T",
        row_count=rows,
        page_count=pages,
        row_width=64,
        columns={"c": col()},
    )


class TestCostModel:
    def test_defaults_positive(self):
        assert CM.seq_page_cost > 0
        assert CM.random_page_cost >= CM.seq_page_cost

    def test_validation(self):
        with pytest.raises(CatalogError):
            CostModel(seq_page_cost=-1)
        with pytest.raises(CatalogError):
            CostModel(work_mem_bytes=0)
        with pytest.raises(CatalogError):
            CostModel(rescan_discount=2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CM.seq_page_cost = 2.0  # type: ignore[misc]


class TestSelectivity:
    def test_pair_is_one_over_max(self):
        assert predicate_selectivity(col(100), col(1000)) == pytest.approx(1e-3)

    def test_skew_floor(self):
        skewed = predicate_selectivity(
            col(100, mcf=0.5), col(1000, mcf=0.5)
        )
        assert skewed == pytest.approx(0.25)

    def test_needs_two_members(self):
        with pytest.raises(CatalogError):
            eclass_selectivity([col()])

    def test_multiway_divides_by_t_minus_1_largest(self):
        sel = eclass_selectivity([col(10, mcf=1e-9), col(100, mcf=1e-9), col(1000, mcf=1e-9)])
        assert sel == pytest.approx(1.0 / (100 * 1000))

    @given(
        st.lists(
            st.integers(min_value=1, max_value=10**7), min_size=2, max_size=6
        )
    )
    def test_bounds(self, distincts):
        sel = eclass_selectivity([col(d, mcf=1.0 / d) for d in distincts])
        assert 0.0 < sel <= 1.0

    def test_monotone_in_distinct_count(self):
        low = predicate_selectivity(col(10, 1e-9), col(10, 1e-9))
        high = predicate_selectivity(col(10, 1e-9), col(1000, 1e-9))
        assert high < low


class TestScanCosts:
    def test_seq_scan_formula(self):
        t = table(rows=1000, pages=10)
        assert seq_scan_cost(t, CM) == pytest.approx(
            10 * CM.seq_page_cost + 1000 * CM.cpu_tuple_cost
        )

    def test_index_scan_costlier_than_seq(self):
        t = table(rows=100_000, pages=1000)
        assert index_scan_full_cost(t, CM) > seq_scan_cost(t, CM)

    def test_index_lookup_grows_with_matches(self):
        t = table()
        cheap = index_lookup_cost(t, col(index=True), 1, CM)
        costly = index_lookup_cost(t, col(index=True), 1000, CM)
        assert costly > cheap > 0


class TestSortCost:
    def test_zero_rows_free(self):
        assert sort_cost(0, 8, CM) == 0.0

    def test_superlinear(self):
        small = sort_cost(1000, 8, CM)
        big = sort_cost(100_000, 8, CM)
        assert big > 100 * small * 0.5  # at least ~n log n growth

    def test_spill_penalty(self):
        in_mem = sort_cost(1000, 8, CM)
        spill_rows = CM.work_mem_bytes  # rows * width 8 > work_mem
        spilled = sort_cost(spill_rows, 8, CM)
        no_spill_model = CostModel(work_mem_bytes=2**40)
        unspilled = sort_cost(spill_rows, 8, no_spill_model)
        assert spilled > unspilled > in_mem


class TestJoinCosts:
    def test_all_methods_cover_input_costs(self):
        args = dict(out_rows=500.0, cm=CM)
        nl = nestloop_cost(100, 50.0, 200, 80.0, **args)
        hj = hash_join_cost(100, 50.0, 200, 80.0, 64, **args)
        mj = merge_join_cost(100, 50.0, 200, 80.0, **args)
        for cost in (nl, hj, mj):
            assert cost >= 130.0

    def test_nestloop_quadratic_term(self):
        small = nestloop_cost(10, 0, 10, 0, 1, CM)
        big = nestloop_cost(1000, 0, 1000, 0, 1, CM)
        assert big > 1000 * small * 0.1

    def test_hash_join_linear_ish(self):
        base = hash_join_cost(1000, 0, 1000, 0, 8, 1, CM)
        bigger = hash_join_cost(10_000, 0, 10_000, 0, 8, 1, CM)
        assert bigger < base * 100  # far from quadratic

    def test_hash_spill_penalty(self):
        rows = CM.work_mem_bytes  # build side overflows work_mem at width 8
        spilled = hash_join_cost(10, 0, rows, 0, 8, 1, CM)
        fits = hash_join_cost(
            10, 0, rows, 0, 8, 1, CostModel(work_mem_bytes=2**40)
        )
        assert spilled > fits

    def test_index_nestloop_uses_probe_cost(self):
        cheap = index_nestloop_cost(100, 0, probe_cost=1.0, out_rows=10, cm=CM)
        costly = index_nestloop_cost(100, 0, probe_cost=50.0, out_rows=10, cm=CM)
        assert costly > cheap


class TestCardinalityEstimator:
    def _graph_and_stats(self, small_schema, small_stats, n=4):
        names = list(small_schema.relation_names[:n])
        joins = [
            (names[i], "c1", names[i + 1], "c2") for i in range(n - 1)
        ]
        return JoinGraph(names, joins), small_stats

    def test_single_relation_rows(self, small_schema, small_stats):
        graph, stats = self._graph_and_stats(small_schema, small_stats)
        est = CardinalityEstimator(graph, stats)
        expected = stats.table(graph.relation_names[0]).row_count
        assert est.rows(1) == pytest.approx(expected)

    def test_rows_at_least_one(self, small_schema, small_stats):
        graph, stats = self._graph_and_stats(small_schema, small_stats)
        est = CardinalityEstimator(graph, stats)
        assert est.rows(graph.all_mask) >= 1.0

    def test_join_reduces_vs_cartesian(self, small_schema, small_stats):
        graph, stats = self._graph_and_stats(small_schema, small_stats)
        est = CardinalityEstimator(graph, stats)
        pair = 0b11
        cartesian = est.rows(1) * est.rows(2)
        assert est.rows(pair) <= cartesian

    def test_log_selectivity_nonpositive(self, small_schema, small_stats):
        graph, stats = self._graph_and_stats(small_schema, small_stats)
        est = CardinalityEstimator(graph, stats)
        assert est.log_selectivity(0b111) <= 1e-9

    def test_memoization_consistency(self, small_schema, small_stats):
        graph, stats = self._graph_and_stats(small_schema, small_stats)
        est = CardinalityEstimator(graph, stats)
        assert est.rows(0b1011 & graph.all_mask) == est.rows(0b1011 & graph.all_mask)

    def test_width_additive(self, small_schema, small_stats):
        graph, stats = self._graph_and_stats(small_schema, small_stats)
        est = CardinalityEstimator(graph, stats)
        assert est.width(0b11) == est.width(0b01) + est.width(0b10)

    def test_empty_mask_rejected(self, small_schema, small_stats):
        graph, stats = self._graph_and_stats(small_schema, small_stats)
        est = CardinalityEstimator(graph, stats)
        with pytest.raises(CatalogError):
            est.rows(0)

    def test_shared_column_uses_tminus1_rule(self, small_schema, small_stats):
        names = list(small_schema.relation_names[:3])
        # shared column: A.c1 = B.c1, A.c1 = C.c1 (one eclass, 3 members)
        joins = [
            (names[0], "c1", names[1], "c1"),
            (names[0], "c1", names[2], "c1"),
        ]
        graph = JoinGraph(names, joins)
        est = CardinalityEstimator(graph, small_stats)
        tables = [small_stats.table(n) for n in names]
        ndvs = sorted(
            (t.column("c1").n_distinct for t in tables), reverse=True
        )
        expected_log = (
            sum(math.log(t.row_count) for t in tables)
            - math.log(ndvs[0])
            - math.log(ndvs[1])
        )
        got = math.log(est.rows(graph.all_mask))
        skew_possible = got >= expected_log - 1e-6
        assert skew_possible
