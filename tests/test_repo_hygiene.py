"""Repository hygiene: no build artifacts tracked by git."""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        ["git", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=30,
    )


def _require_git_repo() -> None:
    probe = _git("rev-parse", "--is-inside-work-tree")
    if probe.returncode != 0 or probe.stdout.strip() != "true":
        pytest.skip("not running inside a git checkout")


def test_no_tracked_bytecode():
    _require_git_repo()
    tracked = _git("ls-files", "*.pyc", "*.pyo")
    assert tracked.returncode == 0, tracked.stderr
    assert tracked.stdout.strip() == "", (
        f"compiled bytecode is tracked by git:\n{tracked.stdout}"
    )


def test_no_tracked_pycache_directories():
    _require_git_repo()
    tracked = _git("ls-files")
    assert tracked.returncode == 0, tracked.stderr
    offenders = [
        line for line in tracked.stdout.splitlines() if "__pycache__" in line
    ]
    assert offenders == [], (
        f"__pycache__ contents are tracked by git:\n" + "\n".join(offenders)
    )


def test_gitignore_covers_artifacts():
    gitignore = (REPO_ROOT / ".gitignore").read_text(encoding="utf-8")
    for pattern in ("__pycache__/", ".pytest_cache/", "dist/"):
        assert pattern in gitignore, f".gitignore misses {pattern!r}"
    assert "*.py[cod]" in gitignore or "*.pyc" in gitignore
