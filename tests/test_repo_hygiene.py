"""Repository hygiene: no build artifacts tracked by git."""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _git(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        ["git", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=30,
    )


def _require_git_repo() -> None:
    probe = _git("rev-parse", "--is-inside-work-tree")
    if probe.returncode != 0 or probe.stdout.strip() != "true":
        pytest.skip("not running inside a git checkout")


def test_no_tracked_bytecode():
    _require_git_repo()
    tracked = _git("ls-files", "*.pyc", "*.pyo")
    assert tracked.returncode == 0, tracked.stderr
    assert tracked.stdout.strip() == "", (
        f"compiled bytecode is tracked by git:\n{tracked.stdout}"
    )


def test_no_tracked_pycache_directories():
    _require_git_repo()
    tracked = _git("ls-files")
    assert tracked.returncode == 0, tracked.stderr
    offenders = [
        line for line in tracked.stdout.splitlines() if "__pycache__" in line
    ]
    assert offenders == [], (
        f"__pycache__ contents are tracked by git:\n" + "\n".join(offenders)
    )


def test_gitignore_covers_artifacts():
    gitignore = (REPO_ROOT / ".gitignore").read_text(encoding="utf-8")
    for pattern in ("__pycache__/", ".pytest_cache/", "dist/"):
        assert pattern in gitignore, f".gitignore misses {pattern!r}"
    assert "*.py[cod]" in gitignore or "*.pyc" in gitignore


def test_bytecode_ignored_everywhere():
    """git must ignore bytecode in every directory, not just src/.

    ``benchmarks/`` and ``tests/`` grow ``__pycache__`` the moment their
    modules are imported; an anchored ignore pattern would leave those
    trees unprotected and a later ``git add -A`` would commit them.
    """
    _require_git_repo()
    candidates = [
        "benchmarks/__pycache__/bench_hot_paths.cpython-311.pyc",
        "tests/__pycache__/test_lint_clean.cpython-311.pyc",
        "src/repro/core/__pycache__/dp.cpython-311.pyc",
        "examples/__pycache__/x.cpython-311.pyc",
    ]
    result = _git("check-ignore", "--", *candidates)
    assert result.returncode == 0, (
        f"git check-ignore failed: {result.stderr or result.stdout}"
    )
    ignored = set(result.stdout.splitlines())
    missed = [path for path in candidates if path not in ignored]
    assert missed == [], (
        ".gitignore does not cover bytecode in:\n" + "\n".join(missed)
    )
