"""Unit and property tests for repro.util.bitset."""

from __future__ import annotations

from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import (
    bit_count,
    bit_indices,
    bits_of,
    first_bit,
    is_subset,
    lowest_set_bit,
    mask_of,
    subsets_of,
)

masks = st.integers(min_value=0, max_value=(1 << 20) - 1)


class TestMaskOf:
    def test_empty(self):
        assert mask_of([]) == 0

    def test_simple(self):
        assert mask_of([0, 2, 5]) == 0b100101

    def test_duplicates_collapse(self):
        assert mask_of([3, 3, 3]) == 0b1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask_of([-1])

    @given(st.lists(st.integers(min_value=0, max_value=30)))
    def test_round_trip(self, indices):
        assert bit_indices(mask_of(indices)) == sorted(set(indices))


class TestBitsOf:
    def test_empty(self):
        assert list(bits_of(0)) == []

    def test_ascending_powers(self):
        assert list(bits_of(0b1011)) == [1, 2, 8]

    @given(masks)
    def test_or_of_bits_reconstructs(self, mask):
        total = 0
        for bit in bits_of(mask):
            assert bit & (bit - 1) == 0  # power of two
            total |= bit
        assert total == mask


class TestBitCountAndIndices:
    @given(masks)
    def test_count_matches_indices(self, mask):
        assert bit_count(mask) == len(bit_indices(mask))

    @given(masks)
    def test_indices_sorted_unique(self, mask):
        indices = bit_indices(mask)
        assert indices == sorted(set(indices))


class TestSubsetPredicate:
    @given(masks, masks)
    def test_is_subset_definition(self, a, b):
        assert is_subset(a, b) == (a | b == b)

    def test_empty_is_subset_of_all(self):
        assert is_subset(0, 0b101)

    def test_not_subset(self):
        assert not is_subset(0b11, 0b01)


class TestFirstBit:
    def test_simple(self):
        assert first_bit(0b1100) == 2

    def test_zero_raises(self):
        with pytest.raises(ValueError):
            first_bit(0)

    @given(masks.filter(lambda m: m > 0))
    def test_matches_lowest_set_bit(self, mask):
        assert 1 << first_bit(mask) == lowest_set_bit(mask)


class TestSubsetsOf:
    def test_enumerates_all_nonempty(self):
        mask = 0b1011
        expected = set()
        indices = bit_indices(mask)
        for size in range(1, len(indices) + 1):
            for combo in combinations(indices, size):
                expected.add(mask_of(combo))
        assert set(subsets_of(mask)) == expected

    def test_proper_excludes_self(self):
        assert mask_of([0, 1]) not in set(subsets_of(0b11, proper=True))

    def test_nonempty_false_includes_zero(self):
        assert 0 in set(subsets_of(0b101, nonempty=False))

    def test_zero_mask(self):
        assert list(subsets_of(0)) == []
        assert list(subsets_of(0, nonempty=False)) == [0]

    @given(st.integers(min_value=0, max_value=(1 << 12) - 1))
    def test_count_is_two_to_popcount(self, mask):
        count = sum(1 for _ in subsets_of(mask, nonempty=False))
        assert count == 1 << bit_count(mask)

    @given(st.integers(min_value=1, max_value=(1 << 12) - 1))
    def test_all_are_subsets(self, mask):
        for sub in subsets_of(mask):
            assert is_subset(sub, mask)
            assert sub != 0


class TestSubsetsOfEdgeCases:
    """The flag combinations the DPccp hot loops actually exercise."""

    def test_single_bit_mask(self):
        assert list(subsets_of(0b1000)) == [0b1000]

    def test_single_bit_proper_is_empty(self):
        assert list(subsets_of(0b1000, proper=True)) == []

    def test_single_bit_proper_nonempty_false_is_just_zero(self):
        assert list(subsets_of(0b1000, proper=True, nonempty=False)) == [0]

    def test_proper_nonempty_false_on_two_bits(self):
        # Strict, possibly-empty subsets: the power set minus the set itself.
        assert list(subsets_of(0b101, proper=True, nonempty=False)) == [0, 1, 4]

    def test_zero_mask_proper(self):
        assert list(subsets_of(0, proper=True)) == []
        assert list(subsets_of(0, proper=True, nonempty=False)) == [0]

    @given(st.integers(min_value=0, max_value=(1 << 12) - 1))
    def test_increasing_numeric_order(self, mask):
        subs = list(subsets_of(mask, nonempty=False))
        assert subs == sorted(subs)
        assert len(subs) == len(set(subs))

    @given(st.integers(min_value=1, max_value=(1 << 10) - 1))
    def test_flag_combinations_partition_the_power_set(self, mask):
        everything = set(subsets_of(mask, nonempty=False))
        assert set(subsets_of(mask)) == everything - {0}
        assert set(subsets_of(mask, proper=True)) == everything - {0, mask}
        assert (
            set(subsets_of(mask, proper=True, nonempty=False))
            == everything - {mask}
        )

    def test_noncontiguous_high_bits(self):
        mask = (1 << 40) | (1 << 7)
        assert list(subsets_of(mask)) == [1 << 7, 1 << 40, mask]
