"""Property-based tests on cost-model monotonicity and failure injection.

A cost model does not need to be *accurate* to make DP comparisons sound,
but it must be internally consistent: costs must grow with work. These
hypothesis tests pin the monotonicity properties the optimizers rely on,
plus the error behavior when inputs are malformed.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.statistics import CatalogStatistics, ColumnStats, TableStats
from repro.cost import (
    DEFAULT_COST_MODEL,
    eclass_selectivity,
    hash_join_cost,
    merge_join_cost,
    nestloop_cost,
    seq_scan_cost,
    sort_cost,
)
from repro.cost.cardinality import CardinalityEstimator
from repro.errors import CatalogError
from repro.query import JoinGraph

CM = DEFAULT_COST_MODEL

rows_st = st.floats(min_value=1.0, max_value=1e8)
cost_st = st.floats(min_value=0.0, max_value=1e9)
width_st = st.integers(min_value=1, max_value=512)


def _col(n_distinct, mcf=None):
    if mcf is None:
        mcf = 1.0 / n_distinct
    return ColumnStats("c", n_distinct, mcf, 4, False, max(n_distinct, 1))


class TestMonotonicity:
    @given(rows_st, rows_st)
    def test_sort_monotone_in_rows(self, a, b):
        lo, hi = sorted((a, b))
        assert sort_cost(lo, 8, CM) <= sort_cost(hi, 8, CM) + 1e-9

    @given(rows_st, width_st, width_st)
    def test_sort_monotone_in_width(self, rows, w1, w2):
        lo, hi = sorted((w1, w2))
        assert sort_cost(rows, lo, CM) <= sort_cost(rows, hi, CM) + 1e-9

    @given(rows_st, rows_st, rows_st, cost_st, cost_st)
    def test_joins_monotone_in_output(self, l_rows, r_rows, out, l_cost, r_cost):
        smaller = nestloop_cost(l_rows, l_cost, r_rows, r_cost, out, CM)
        bigger = nestloop_cost(l_rows, l_cost, r_rows, r_cost, out * 2, CM)
        assert smaller <= bigger + 1e-9
        smaller = hash_join_cost(l_rows, l_cost, r_rows, r_cost, 8, out, CM)
        bigger = hash_join_cost(l_rows, l_cost, r_rows, r_cost, 8, out * 2, CM)
        assert smaller <= bigger + 1e-9
        smaller = merge_join_cost(l_rows, l_cost, r_rows, r_cost, out, CM)
        bigger = merge_join_cost(l_rows, l_cost, r_rows, r_cost, out * 2, CM)
        assert smaller <= bigger + 1e-9

    @given(rows_st, rows_st, cost_st, cost_st, cost_st)
    def test_joins_monotone_in_input_cost(self, l_rows, r_rows, c1, c2, out):
        lo, hi = sorted((c1, c2))
        assert nestloop_cost(l_rows, lo, r_rows, 0, out, CM) <= nestloop_cost(
            l_rows, hi, r_rows, 0, out, CM
        ) + 1e-9

    @given(
        st.lists(st.integers(min_value=1, max_value=10**6), min_size=2, max_size=5)
    )
    def test_eclass_selectivity_permutation_invariant(self, distincts):
        import itertools

        base = eclass_selectivity([_col(d) for d in distincts])
        for perm in itertools.islice(itertools.permutations(distincts), 4):
            assert eclass_selectivity([_col(d) for d in perm]) == pytest.approx(
                base
            )

    @given(
        st.integers(min_value=1, max_value=10**6),
        st.integers(min_value=1, max_value=10**6),
    )
    def test_seq_scan_monotone(self, a, b):
        lo, hi = sorted((a, b))
        t_lo = TableStats("T", lo, max(1, lo // 100), 64, {})
        t_hi = TableStats("T", hi, max(1, hi // 100), 64, {})
        assert seq_scan_cost(t_lo, CM) <= seq_scan_cost(t_hi, CM) + 1e-9


class TestFailureInjection:
    def test_estimator_rejects_missing_relation_stats(self, small_schema):
        names = list(small_schema.relation_names[:2])
        graph = JoinGraph(names, [(names[0], "c1", names[1], "c2")])
        partial = CatalogStatistics(
            {
                names[0]: TableStats(
                    names[0],
                    100,
                    10,
                    64,
                    {"c1": _col(50)},
                )
            }
        )
        with pytest.raises(CatalogError):
            CardinalityEstimator(graph, partial)

    def test_estimator_rejects_empty_relation(self, small_schema):
        names = list(small_schema.relation_names[:2])
        graph = JoinGraph(names, [(names[0], "c1", names[1], "c2")])
        stats = CatalogStatistics(
            {
                names[0]: TableStats(names[0], 0, 1, 64, {"c1": _col(1)}),
                names[1]: TableStats(names[1], 10, 1, 64, {"c2": _col(5)}),
            }
        )
        with pytest.raises(CatalogError):
            CardinalityEstimator(graph, stats)

    def test_empty_statistics_rejected(self):
        with pytest.raises(CatalogError):
            CatalogStatistics({})

    def test_optimizer_surfaces_catalog_errors(self, small_schema, small_stats):
        """A query against a schema whose stats lack a relation fails loudly."""
        from repro.core import SDPOptimizer
        from repro.query import Query

        names = list(small_schema.relation_names[:2])
        graph = JoinGraph(names, [(names[0], "c1", names[1], "c2")])
        query = Query(small_schema, graph)
        partial = CatalogStatistics(
            {
                names[0]: TableStats(
                    names[0], 100, 10, 64, {"c1": _col(50)}
                )
            }
        )
        with pytest.raises(CatalogError):
            SDPOptimizer().optimize(query, partial)
