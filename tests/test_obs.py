"""Observability layer: tracing, metrics, search profiling.

Covers the ``repro.obs`` package itself (span trees, exporters, the
metrics registry, Prometheus rendering, the profiler) and its wiring into
the optimizers, the robust ladder, the serving layer and the fault
harness — including the contract that everything is a no-op while
observability is disabled.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.core import SearchBudget, make_optimizer
from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import InMemorySpanExporter, JsonlSpanExporter, Tracer
from repro.robust import FaultHarness, RobustOptimizer
from repro.service import OptimizationService, PlanCache, optimize_many
from tests.conftest import make_star_query

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _pristine_obs():
    """Every test starts and ends with observability fully disabled."""
    obs.reset()
    yield
    obs.reset()


# -- tracer mechanics --------------------------------------------------------


class TestTracer:
    def test_span_tree_parentage(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter)
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert grandchild.parent_id == child.span_id
        assert child.parent_id == root.span_id
        assert sibling.parent_id == root.span_id
        assert root.parent_id is None
        # Exported in finish order: leaves first.
        assert [s.name for s in exporter.spans] == [
            "grandchild", "child", "sibling", "root",
        ]

    def test_span_timing_and_attributes(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter)
        with tracer.span("work", kind="test") as span:
            span.set(items=3)
        assert span.duration_seconds >= 0.0
        assert span.attributes == {"kind": "test", "items": 3}
        assert span.status == "ok"

    def test_error_status_on_exception(self):
        exporter = InMemorySpanExporter()
        tracer = Tracer(exporter)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = exporter.spans
        assert span.status == "error"
        assert span.attributes["error"] == "ValueError"

    def test_ring_buffer_capacity(self):
        exporter = InMemorySpanExporter(capacity=3)
        tracer = Tracer(exporter)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in exporter.spans] == ["s2", "s3", "s4"]

    def test_jsonl_exporter(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(JsonlSpanExporter(path))
        with tracer.span("a", n=1):
            with tracer.span("b"):
                pass
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["b", "a"]
        assert records[1]["attributes"] == {"n": 1}
        assert records[0]["parent_id"] == records[1]["span_id"]


# -- metrics registry --------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_snapshot(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "Hits.", ("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        snap = registry.snapshot()
        assert snap["hits_total"]["values"] == {("a",): 1.0, ("b",): 2.0}

    def test_counter_rejects_negative_and_bad_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "C.", ("kind",))
        with pytest.raises(ObservabilityError):
            counter.inc(-1, kind="a")
        with pytest.raises(ObservabilityError):
            counter.inc(other="a")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing", "T.")
        with pytest.raises(ObservabilityError):
            registry.gauge("thing", "T.")

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "D.")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert registry.snapshot()["depth"]["values"] == {(): 4.0}

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "L.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        rendered = registry.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in rendered
        assert 'lat_seconds_bucket{le="1"} 2' in rendered
        assert 'lat_seconds_bucket{le="+Inf"} 3' in rendered
        assert "lat_seconds_count 3" in rendered

    def test_prometheus_rendering_escapes_labels(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C.", ("q",)).inc(q='star "x"\n')
        rendered = registry.render_prometheus()
        assert '\\"x\\"' in rendered and "\\n" in rendered


# -- optimizer instrumentation ----------------------------------------------


class TestOptimizerSpans:
    def test_sdp_level_spans_sum_to_plans_costed(self, schema, stats):
        query = make_star_query(schema, 10)
        with obs.capture() as exporter:
            result = make_optimizer("SDP").optimize(query, stats)
        levels = [s for s in exporter.spans if s.name == "sdp.level"]
        assert levels, "traced SDP run emitted no level spans"
        assert (
            sum(s.attributes["plans_costed"] for s in levels)
            == result.plans_costed
        )
        # One span per DP level, in order.
        assert [s.attributes["level"] for s in levels] == list(range(1, 11))

    def test_dp_span_tree_deterministic_across_seeds(self, schema, stats):
        query = make_star_query(schema, 6)

        def shape():
            with obs.capture() as exporter:
                result = make_optimizer("DP").optimize(query, stats)
            spans = list(exporter.spans)
            levels = [s for s in spans if s.name == "dp.level"]
            assert (
                sum(s.attributes["plans_costed"] for s in levels)
                == result.plans_costed
            )
            return [
                (s.name, s.attributes.get("level"),
                 s.attributes.get("plans_costed"))
                for s in spans
            ]

        first = shape()
        for _ in range(2):
            assert shape() == first

    def test_optimize_counters_and_histogram(self, schema, stats):
        query = make_star_query(schema, 6)
        registry = MetricsRegistry()
        with obs.capture(registry=registry):
            make_optimizer("SDP").optimize(query, stats)
        snap = registry.snapshot()
        assert snap["repro_optimizations_total"]["values"] == {
            ("SDP", "ok"): 1.0
        }
        assert snap["repro_plans_costed_total"]["values"][("SDP",)] > 0
        seconds = snap["repro_optimize_seconds"]["values"][("SDP",)]
        assert seconds["count"] == 1

    def test_budget_trip_recorded_as_error_status(self, schema, stats):
        query = make_star_query(schema, 12)
        optimizer = make_optimizer(
            "DP", budget=SearchBudget(max_plans_costed=50)
        )
        registry = MetricsRegistry()
        with obs.capture(registry=registry) as exporter:
            with pytest.raises(Exception):
                optimizer.optimize(query, stats)
        (root,) = [s for s in exporter.spans if s.name == "optimize"]
        assert root.status == "error"
        (key,) = registry.snapshot()["repro_optimizations_total"]["values"]
        assert key == ("DP", "OptimizationBudgetExceeded")


# -- disabled path -----------------------------------------------------------


class TestDisabledPath:
    def test_no_spans_no_counters_when_disabled(self, schema, stats):
        query = make_star_query(schema, 6)
        probe = InMemorySpanExporter()
        assert not obs.enabled()
        result = make_optimizer("SDP").optimize(query, stats)
        assert result.plans_costed > 0
        assert list(probe.spans) == []
        assert obs.metrics().snapshot() == {}

    def test_disabled_run_equals_traced_run(self, schema, stats):
        query = make_star_query(schema, 8)
        plain = make_optimizer("SDP").optimize(query, stats)
        with obs.capture():
            traced = make_optimizer("SDP").optimize(query, stats)
        assert traced.cost == plain.cost
        assert traced.plans_costed == plain.plans_costed
        from repro import explain

        assert explain(traced.tree(query)) == explain(plain.tree(query))

    def test_cache_disabled_no_metrics(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert obs.metrics().snapshot() == {}
        # CacheStats still counts regardless of observability state.
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_capture_windows_do_not_share_metrics(self, schema, stats):
        query = make_star_query(schema, 5)
        with obs.capture():
            make_optimizer("SDP").optimize(query, stats)
        # A later capture starts from a clean registry; the earlier
        # window's counts stay out of it and out of the global registry.
        with obs.capture():
            make_optimizer("SDP").optimize(query, stats)
            counter = obs.metrics().get("repro_optimizations_total")
            assert counter.value(technique="SDP", status="ok") == 1.0
        assert obs.metrics().snapshot() == {}


# -- serving + robustness wiring ---------------------------------------------


class TestServiceAndRobustObservability:
    def test_plan_cache_metrics_snapshot(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        service = OptimizationService(technique="SDP", cache_capacity=1)
        service.install_statistics(small_stats)
        other = make_star_query(small_schema, 6)
        with obs.capture():
            service.optimize(query)      # miss
            service.optimize(query)      # hit
            service.optimize(other)      # miss + eviction (capacity 1)
            service.install_statistics(small_stats)  # invalidation
            snapshot = obs.metrics().snapshot()
        values = snapshot["repro_plan_cache_events_total"]["values"]
        assert values[("miss",)] == 2.0
        assert values[("hit",)] == 1.0
        assert values[("eviction",)] == 1.0
        assert values[("invalidation",)] == 1.0
        assert snapshot["repro_plan_cache_size"]["values"][()] == 0.0
        # CacheStats agrees with the registry.
        stats = service.cache_stats
        assert (stats.hits, stats.misses) == (1, 2)

    def test_service_optimize_span(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        service = OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        with obs.capture() as exporter:
            service.optimize(query)
            service.optimize(query)
        spans = [s for s in exporter.spans if s.name == "service.optimize"]
        assert [s.attributes["cache_hit"] for s in spans] == [False, True]
        assert all(s.attributes["fingerprint"] for s in spans)

    @pytest.mark.faults
    def test_robust_rung_spans_and_fault_counter(self, schema, stats):
        query = make_star_query(schema, 8)
        robust = RobustOptimizer(
            budget=SearchBudget(max_memory_bytes=1 << 30)
        )
        harness = FaultHarness(seed=7)
        with obs.capture() as exporter:
            with harness.budget_trip(robust, at_event=100, resource="memory"):
                result = robust.optimize(query, stats)
            snapshot = obs.metrics().snapshot()
        assert result.degraded
        rungs = [s for s in exporter.spans if s.name == "robust.rung"]
        outcomes = [
            (s.attributes["technique"], s.attributes["outcome"])
            for s in rungs
        ]
        assert outcomes == [("DP", "budget-exceeded"), ("SDP", "ok")]
        (ladder,) = [s for s in exporter.spans if s.name == "robust.ladder"]
        assert ladder.attributes["winner"] == "SDP"
        assert ladder.attributes["degraded"] is True
        faults = snapshot["repro_faults_injected_total"]["values"]
        assert faults[("budget-trip",)] == 1.0
        rung_counts = snapshot["repro_robust_rungs_total"]["values"]
        assert rung_counts[("DP", "budget-exceeded")] == 1.0
        assert rung_counts[("SDP", "ok")] == 1.0

    def test_batch_spans_serial(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        with obs.capture() as exporter:
            grid = optimize_many(
                [query], ["SDP", "GOO"], stats=small_stats, workers=1
            )
        assert grid[0][0].feasible and grid[0][1].feasible
        names = [s.name for s in exporter.spans]
        assert names.count("service.cell") == 2
        assert names.count("service.batch") == 1


# -- profiler ----------------------------------------------------------------


class TestSearchProfiler:
    def test_profile_rows_aggregate_runs(self, schema, stats):
        query = make_star_query(schema, 6)
        with obs.capture() as exporter:
            make_optimizer("SDP").optimize(query, stats)
            make_optimizer("SDP").optimize(query, stats)
        rows = obs.search_profile(exporter.spans)
        assert {row.technique for row in rows} == {"SDP"}
        assert all(row.runs == 2 for row in rows)
        level2 = next(row for row in rows if row.level == 2)
        assert level2.total("plans_costed") % 2 == 0

    def test_render_profile_table(self, schema, stats):
        query = make_star_query(schema, 6)
        with obs.capture() as exporter:
            make_optimizer("SDP").optimize(query, stats)
            make_optimizer("DP").optimize(query, stats)
        table = obs.render_search_profile(exporter.spans)
        assert "Technique" in table and "Plans costed" in table
        assert "SDP" in table and "DP" in table

    def test_render_empty(self):
        assert "no level spans" in obs.render_search_profile([])

    def test_explain_trace_accepts_result_and_exporter(self, schema, stats):
        import repro

        query = make_star_query(schema, 6)
        traced = repro.optimize(query, stats=stats, trace=True)
        rendered = obs.explain_trace(traced)
        assert "optimize" in rendered and "sdp.level" in rendered
        assert obs.explain_trace(traced.trace) == rendered
