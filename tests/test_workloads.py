"""Tests for repro.workloads: the TPC-H-lite schema and SQL templates."""

from __future__ import annotations

import pytest

import repro
from repro.catalog import analyze
from repro.plans.validate import validate_plan
from repro.workloads import TPCH_LITE_SQL, tpch_lite_queries, tpch_lite_schema

EXPECTED_RELATIONS = {
    "region",
    "nation",
    "supplier",
    "customer",
    "part",
    "partsupp",
    "orders",
    "lineitem",
}


@pytest.fixture(scope="module")
def lite_schema():
    return tpch_lite_schema()


@pytest.fixture(scope="module")
def lite_stats(lite_schema):
    return analyze(lite_schema)


@pytest.fixture(scope="module")
def lite_queries(lite_schema):
    return tpch_lite_queries(lite_schema)


class TestSchema:
    def test_deterministic(self):
        def shape(schema):
            return tuple(
                (
                    rel.name,
                    rel.row_count,
                    tuple(
                        (c.name, c.domain_size, c.width, repr(c.distribution))
                        for c in rel.columns
                    ),
                    tuple(i.column_name for i in rel.indexes),
                )
                for rel in (schema.relation(n) for n in schema.relation_names)
            )

        assert shape(tpch_lite_schema()) == shape(tpch_lite_schema())
        assert tpch_lite_schema().name == "tpch-lite"

    def test_eight_tpch_relations(self, lite_schema):
        assert set(lite_schema.relation_names) == EXPECTED_RELATIONS

    def test_foreign_key_domains_match_referenced_cardinality(
        self, lite_schema
    ):
        # A FK column's domain equals the referenced relation's row count,
        # so join selectivities behave like the real benchmark's.
        fks = (
            ("nation", "n_regionkey", "region"),
            ("supplier", "s_nationkey", "nation"),
            ("customer", "c_nationkey", "nation"),
            ("partsupp", "ps_partkey", "part"),
            ("partsupp", "ps_suppkey", "supplier"),
            ("orders", "o_custkey", "customer"),
            ("lineitem", "l_orderkey", "orders"),
            ("lineitem", "l_partkey", "part"),
            ("lineitem", "l_suppkey", "supplier"),
        )
        for rel, column, referenced in fks:
            domain = lite_schema.relation(rel).column(column).domain_size
            assert domain == lite_schema.relation(referenced).row_count, (
                rel,
                column,
            )

    def test_key_columns_are_indexed(self, lite_schema):
        for rel, column in (
            ("region", "r_regionkey"),
            ("orders", "o_orderkey"),
            ("lineitem", "l_orderkey"),
            ("supplier", "s_suppkey"),
        ):
            indexed = {i.column_name for i in lite_schema.relation(rel).indexes}
            assert column in indexed


class TestTemplates:
    def test_all_templates_parse(self, lite_queries):
        assert len(lite_queries) == len(TPCH_LITE_SQL) == 13
        labels = [q.label for q in lite_queries]
        assert labels == [label for label, _ in TPCH_LITE_SQL]

    def test_feature_coverage(self, lite_queries):
        by_label = {q.label: q for q in lite_queries}
        # Selection-free join-order problems exist ...
        assert not by_label["region-nations"].selections
        assert not by_label["order-lineitems-ordered"].selections
        # ... and selection-bearing ones, including multi-predicate.
        assert len(by_label["shipping-priority"].selections) == 2
        # ORDER BY on a join column, a non-join indexed column, and a
        # non-join unindexed column are all represented.
        assert by_label["big-customer-orders"].has_join_column_order
        nso = by_label["nation-suppliers-ordered"]
        assert nso.order_by == ("supplier", "s_suppkey")
        assert not nso.has_join_column_order
        sp = by_label["shipping-priority"]
        assert sp.order_by == ("orders", "o_orderdate")
        assert not sp.has_join_column_order

    def test_sizes_span_two_to_eight_way(self, lite_queries):
        sizes = {q.relation_count for q in lite_queries}
        assert min(sizes) == 2
        assert max(sizes) == 8

    def test_every_template_optimizes_and_validates(
        self, lite_schema, lite_stats, lite_queries
    ):
        for query in lite_queries:
            result = repro.SDPOptimizer().optimize(query, lite_stats)
            validate_plan(result.plan, query.graph)

    def test_sql_text_front_door_matches_parsed(
        self, lite_schema, lite_stats, lite_queries
    ):
        # One selection-bearing, one order-bearing template through both
        # entry forms (the full 13-template sweep runs in verify.sh and
        # the sql_workload bench arm).
        by_label = {q.label: q for q in lite_queries}
        for label in ("suppliers-by-region", "big-customer-orders"):
            sql = dict(TPCH_LITE_SQL)[label]
            from_sql = repro.optimize(sql, schema=lite_schema, stats=lite_stats)
            from_query = repro.optimize(by_label[label], stats=lite_stats)
            assert from_sql.cost == from_query.cost, label
            assert from_sql.plans_costed == from_query.plans_costed, label

    def test_facade_exports(self):
        assert repro.TPCH_LITE_SQL is TPCH_LITE_SQL
        assert repro.tpch_lite_schema is tpch_lite_schema
        assert repro.tpch_lite_queries is tpch_lite_queries
