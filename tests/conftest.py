"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.catalog import SchemaBuilder, analyze, paper_schema
from repro.query import JoinGraph, Query, chain_joins, star_joins
from repro.query.topology import star_chain_joins


@pytest.fixture(scope="session")
def schema():
    """The paper's 25-relation schema (seed 0)."""
    return paper_schema(seed=0)


@pytest.fixture(scope="session")
def stats(schema):
    """Statistics snapshot for the paper schema."""
    return analyze(schema)


@pytest.fixture(scope="session")
def small_schema():
    """A small, fast schema for unit tests."""
    return SchemaBuilder(
        seed=1,
        relation_count=10,
        column_count=8,
        max_cardinality=50_000,
        max_domain=50_000,
        name="small-10",
    ).build()


@pytest.fixture(scope="session")
def small_stats(small_schema):
    return analyze(small_schema)


def make_star_query(schema, size: int, label: str = "star") -> Query:
    """A star query over the first ``size`` relations (hub = largest)."""
    hub = schema.largest_relation().name
    spokes = [n for n in schema.relation_names if n != hub][: size - 1]
    graph = JoinGraph([hub, *spokes], star_joins(schema, hub, spokes))
    return Query(schema, graph, label=f"{label}-{size}")


def make_chain_query(schema, size: int, label: str = "chain") -> Query:
    """A chain query over the first ``size`` relations."""
    names = list(schema.relation_names[:size])
    graph = JoinGraph(names, chain_joins(schema, names))
    return Query(schema, graph, label=f"{label}-{size}")


def make_star_chain_query(
    schema, spokes: int, chain: int, label: str = "star-chain"
) -> Query:
    """Hub + ``spokes`` star + ``chain`` chained relations."""
    names = list(schema.relation_names[: 1 + spokes + chain])
    hub, spoke_names, chain_names = (
        names[0],
        names[1 : 1 + spokes],
        names[1 + spokes :],
    )
    graph = JoinGraph(
        names, star_chain_joins(schema, hub, spoke_names, chain_names)
    )
    return Query(schema, graph, label=label)


@pytest.fixture
def star5_query(small_schema):
    return make_star_query(small_schema, 5)


@pytest.fixture
def chain5_query(small_schema):
    return make_chain_query(small_schema, 5)
