"""CLI smoke tests: ``python -m repro.lint`` / ``sdp-bench lint``.

Exercises the driver through its public ``main(argv)`` entry points —
exit codes, text/JSON output, baseline suppression, and the delegation
from ``sdp-bench lint``. A seeded fixture tree provides a reliably dirty
target; the repo's own clean-tree behavior is covered by
``test_lint_clean.py``.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.bench.cli import main as bench_main
from repro.lint.cli import main as lint_main

pytestmark = pytest.mark.lint


@pytest.fixture()
def clean_tree(tmp_path):
    path = tmp_path / "clean" / "src" / "repro" / "core" / "ok.py"
    path.parent.mkdir(parents=True)
    path.write_text("from repro.cost.model import CostModel\n")
    return path.parents[2]


@pytest.fixture()
def dirty_tree(tmp_path):
    path = tmp_path / "dirty" / "src" / "repro" / "cost" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text(textwrap.dedent("""\
        from repro.core.base import Optimizer

        def tie(cost, best_cost):
            return cost == best_cost
    """))
    return path.parents[2]


def test_clean_tree_exits_zero(clean_tree, capsys):
    assert lint_main([str(clean_tree)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_dirty_tree_exits_one_with_rendered_findings(dirty_tree, capsys):
    assert lint_main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "RL003" in out
    # path:line:col CODE message
    assert "bad.py:1:0 RL001" in out


def test_json_format_is_parseable(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    codes = {f["code"] for f in payload["findings"]}
    assert codes == {"RL001", "RL003"}
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "code", "message"}


def test_write_then_apply_baseline_suppresses(dirty_tree, tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    assert lint_main([str(dirty_tree), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()

    assert lint_main([str(dirty_tree), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "2 baselined" in out

    # A fresh finding is NOT hidden by the stale baseline.
    extra = dirty_tree / "repro" / "cost" / "worse.py"
    extra.write_text("from repro.service.service import OptimizationService\n")
    assert lint_main([str(dirty_tree), "--baseline", str(baseline)]) == 1


def test_bad_baseline_is_usage_error(dirty_tree, tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{not json")
    assert lint_main([str(dirty_tree), "--baseline", str(bogus)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope")]) == 2
    err = capsys.readouterr().err
    assert "no such path" in err
    assert len(err.strip().splitlines()) == 1  # diagnostic, not a traceback


def test_duplicate_paths_scan_each_file_once(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), str(dirty_tree)]) == 1
    once = capsys.readouterr().out
    assert "1 file(s)" in once
    assert once.count("RL003") == 1


def test_syntax_error_is_single_line_diagnostic(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    assert lint_main([str(bad)]) == 2
    err = capsys.readouterr().err
    assert "cannot parse" in err
    assert len(err.strip().splitlines()) == 1


def test_undecodable_file_is_single_line_diagnostic(tmp_path, capsys):
    binary = tmp_path / "binary.py"
    binary.write_bytes(b"\xff\xfe\x00junk\x80")
    assert lint_main([str(binary)]) == 2
    err = capsys.readouterr().err
    assert "cannot read" in err
    assert len(err.strip().splitlines()) == 1


def test_list_prints_all_codes(capsys):
    assert lint_main(["--list"]) == 0
    out = capsys.readouterr().out
    for code in (
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008", "RL009", "RL010", "RL011", "RL012",
    ):
        assert code in out


def test_only_restricts_to_selected_checkers(dirty_tree, capsys):
    # The fixture violates RL001 and RL003; --only RL003 hides RL001.
    assert lint_main([str(dirty_tree), "--only", "RL003"]) == 1
    out = capsys.readouterr().out
    assert "RL003" in out and "RL001" not in out

    assert lint_main([str(dirty_tree), "--only", "RL009,RL010"]) == 0


def test_skip_drops_selected_checkers(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--skip", "RL001,RL003"]) == 0
    capsys.readouterr()
    assert lint_main([str(dirty_tree), "--skip", "RL001"]) == 1
    out = capsys.readouterr().out
    assert "RL003" in out and "RL001" not in out


def test_unknown_checker_code_is_usage_error(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--only", "RL999"]) == 2
    assert "unknown checker code" in capsys.readouterr().err
    assert lint_main([str(dirty_tree), "--skip", "nope"]) == 2
    assert "unknown checker code" in capsys.readouterr().err


def test_jobs_parallel_parse_matches_serial(dirty_tree, capsys):
    assert lint_main([str(dirty_tree)]) == 1
    serial = capsys.readouterr().out
    assert lint_main([str(dirty_tree), "--jobs", "4"]) == 1
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_bad_jobs_value_is_usage_error(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_sdp_bench_lint_delegates(dirty_tree, clean_tree, capsys):
    assert bench_main(["lint", str(clean_tree)]) == 0
    capsys.readouterr()
    assert bench_main(["lint", str(dirty_tree)]) == 1
    assert "RL001" in capsys.readouterr().out
