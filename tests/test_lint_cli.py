"""CLI smoke tests: ``python -m repro.lint`` / ``sdp-bench lint``.

Exercises the driver through its public ``main(argv)`` entry points —
exit codes, text/JSON output, baseline suppression, and the delegation
from ``sdp-bench lint``. A seeded fixture tree provides a reliably dirty
target; the repo's own clean-tree behavior is covered by
``test_lint_clean.py``.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.bench.cli import main as bench_main
from repro.lint.cli import main as lint_main

pytestmark = pytest.mark.lint


@pytest.fixture()
def clean_tree(tmp_path):
    path = tmp_path / "clean" / "src" / "repro" / "core" / "ok.py"
    path.parent.mkdir(parents=True)
    path.write_text("from repro.cost.model import CostModel\n")
    return path.parents[2]


@pytest.fixture()
def dirty_tree(tmp_path):
    path = tmp_path / "dirty" / "src" / "repro" / "cost" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text(textwrap.dedent("""\
        from repro.core.base import Optimizer

        def tie(cost, best_cost):
            return cost == best_cost
    """))
    return path.parents[2]


def test_clean_tree_exits_zero(clean_tree, capsys):
    assert lint_main([str(clean_tree)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_dirty_tree_exits_one_with_rendered_findings(dirty_tree, capsys):
    assert lint_main([str(dirty_tree)]) == 1
    out = capsys.readouterr().out
    assert "RL001" in out and "RL003" in out
    # path:line:col CODE message
    assert "bad.py:1:0 RL001" in out


def test_json_format_is_parseable(dirty_tree, capsys):
    assert lint_main([str(dirty_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_scanned"] == 1
    codes = {f["code"] for f in payload["findings"]}
    assert codes == {"RL001", "RL003"}
    first = payload["findings"][0]
    assert set(first) == {"path", "line", "col", "code", "message"}


def test_write_then_apply_baseline_suppresses(dirty_tree, tmp_path, capsys):
    baseline = tmp_path / "lint-baseline.json"
    assert lint_main([str(dirty_tree), "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()

    assert lint_main([str(dirty_tree), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "2 baselined" in out

    # A fresh finding is NOT hidden by the stale baseline.
    extra = dirty_tree / "repro" / "cost" / "worse.py"
    extra.write_text("from repro.service.service import OptimizationService\n")
    assert lint_main([str(dirty_tree), "--baseline", str(baseline)]) == 1


def test_bad_baseline_is_usage_error(dirty_tree, tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{not json")
    assert lint_main([str(dirty_tree), "--baseline", str(bogus)]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_prints_all_codes(capsys):
    assert lint_main(["--list"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"):
        assert code in out


def test_sdp_bench_lint_delegates(dirty_tree, clean_tree, capsys):
    assert bench_main(["lint", str(clean_tree)]) == 0
    capsys.readouterr()
    assert bench_main(["lint", str(dirty_tree)]) == 1
    assert "RL001" in capsys.readouterr().out
