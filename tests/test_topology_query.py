"""Tests for repro.query.topology, repro.query.query, repro.query.sql."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.query import (
    JoinGraph,
    Query,
    chain_joins,
    clique_joins,
    cycle_joins,
    render_sql,
    star_chain_joins,
    star_joins,
)


@pytest.fixture
def names(small_schema):
    return list(small_schema.relation_names)


class TestStarJoins:
    def test_shape(self, small_schema, names):
        joins = star_joins(small_schema, names[0], names[1:5])
        graph = JoinGraph(names[:5], joins)
        assert graph.hubs() == [0]
        assert all(graph.degree(i) == 1 for i in range(1, 5))

    def test_spoke_side_indexed(self, small_schema, names):
        joins = star_joins(small_schema, names[0], names[1:4])
        for _hub, _hcol, spoke, scol in joins:
            assert small_schema.relation(spoke).has_index_on(scol)

    def test_distinct_hub_columns(self, small_schema, names):
        joins = star_joins(small_schema, names[0], names[1:5])
        hub_cols = [j[1] for j in joins]
        assert len(set(hub_cols)) == len(hub_cols)

    def test_shared_hub_column(self, small_schema, names):
        joins = star_joins(
            small_schema, names[0], names[1:5], shared_hub_column=True
        )
        hub_cols = {j[1] for j in joins}
        assert len(hub_cols) == 1
        graph = JoinGraph(names[:5], joins)
        assert graph.shared_column_eclasses() != []

    def test_hub_in_spokes_rejected(self, small_schema, names):
        with pytest.raises(QueryError):
            star_joins(small_schema, names[0], [names[0], names[1]])

    def test_empty_spokes_rejected(self, small_schema, names):
        with pytest.raises(QueryError):
            star_joins(small_schema, names[0], [])


class TestChainCycleClique:
    def test_chain_shape(self, small_schema, names):
        graph = JoinGraph(names[:6], chain_joins(small_schema, names[:6]))
        assert graph.hubs() == []
        assert graph.degree(0) == 1 and graph.degree(3) == 2

    def test_chain_needs_two(self, small_schema, names):
        with pytest.raises(QueryError):
            chain_joins(small_schema, names[:1])

    def test_chain_distinct_relations(self, small_schema, names):
        with pytest.raises(QueryError):
            chain_joins(small_schema, [names[0], names[0]])

    def test_cycle_shape(self, small_schema, names):
        graph = JoinGraph(names[:5], cycle_joins(small_schema, names[:5]))
        assert all(graph.degree(i) == 2 for i in range(5))
        assert graph.hubs() == []

    def test_clique_shape(self, small_schema, names):
        graph = JoinGraph(names[:5], clique_joins(small_schema, names[:5]))
        assert all(graph.degree(i) == 4 for i in range(5))
        assert set(graph.hubs()) == set(range(5))

    def test_clique_too_large_rejected(self, small_schema, names):
        # 10 relations * 9 edges each would exhaust the 8-column schema
        with pytest.raises(QueryError):
            clique_joins(small_schema, names[:10])


class TestStarChain:
    def test_figure_1_1_shape(self, small_schema, names):
        joins = star_chain_joins(
            small_schema, names[0], names[1:5], names[5:8]
        )
        graph = JoinGraph(names[:8], joins)
        assert graph.hubs() == [0]
        # chain anchor: last spoke has the hub edge plus one chain edge
        assert graph.degree(4) == 2
        assert graph.degree(7) == 1

    def test_no_chain_is_pure_star(self, small_schema, names):
        joins = star_chain_joins(small_schema, names[0], names[1:5], [])
        assert len(joins) == 4


class TestQuery:
    def test_relation_count(self, star5_query):
        assert star5_query.relation_count == 5

    def test_missing_relation_rejected(self, small_schema, names):
        graph = JoinGraph(
            ["X1", "X2"], [("X1", "a", "X2", "b")]
        )
        with pytest.raises(QueryError):
            Query(small_schema, graph)

    def test_order_by_on_join_column(self, small_schema, names):
        joins = star_joins(small_schema, names[0], names[1:4])
        graph = JoinGraph(names[:4], joins)
        spoke, column = joins[0][2], joins[0][3]
        query = Query(small_schema, graph, order_by=(spoke, column))
        assert query.has_join_column_order
        assert query.order_by_eclass is not None

    def test_order_by_on_plain_column(self, small_schema, names):
        joins = star_joins(small_schema, names[0], names[1:4])
        graph = JoinGraph(names[:4], joins)
        free_column = next(
            c.name
            for c in small_schema.relation(names[1]).columns
            if c.name not in {j[3] for j in joins}
        )
        query = Query(small_schema, graph, order_by=(names[1], free_column))
        assert not query.has_join_column_order

    def test_order_by_unknown_relation_rejected(self, small_schema, names):
        joins = star_joins(small_schema, names[0], names[1:4])
        graph = JoinGraph(names[:4], joins)
        with pytest.raises(QueryError):
            Query(small_schema, graph, order_by=(names[9], "c1"))

    def test_describe(self, star5_query):
        text = star5_query.describe()
        assert "JoinGraph" in text


class TestRenderSQL:
    def test_contains_all_relations(self, star5_query):
        sql = render_sql(star5_query)
        for name in star5_query.graph.relation_names:
            assert name in sql
        assert sql.startswith("SELECT")
        assert sql.endswith(";")

    def test_where_clause_edges(self, star5_query):
        sql = render_sql(star5_query)
        explicit = [p for p in star5_query.graph.predicates if not p.implied]
        assert sql.count(" = ") == len(explicit)

    def test_order_by_rendered(self, small_schema, names):
        joins = star_joins(small_schema, names[0], names[1:4])
        graph = JoinGraph(names[:4], joins)
        query = Query(
            small_schema, graph, order_by=(joins[0][2], joins[0][3])
        )
        assert "ORDER BY" in render_sql(query)

    def test_select_star(self, star5_query):
        assert "SELECT *" in render_sql(star5_query, select_star=True)

    def test_implied_edges_not_rendered(self, small_schema, names):
        joins = star_joins(
            small_schema, names[0], names[1:5], shared_hub_column=True
        )
        graph = JoinGraph(names[:5], joins)
        query = Query(small_schema, graph)
        sql = render_sql(query)
        assert sql.count(" = ") == 4  # only the written predicates
