"""Tests for repro.util.rng, repro.util.tables, repro.util.timer."""

from __future__ import annotations

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import derive_rng, derive_seed
from repro.util.tables import TextTable
from repro.util.timer import Timer


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_tag_sensitivity(self):
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    @given(st.integers(), st.text(max_size=20))
    def test_range(self, root, tag):
        seed = derive_seed(root, tag)
        assert 0 <= seed < 1 << 63

    def test_rng_streams_independent(self):
        a = derive_rng(0, "stream-a").random()
        b = derive_rng(0, "stream-b").random()
        assert a != b

    def test_rng_reproducible(self):
        xs = [derive_rng(5, "w", 3).random() for _ in range(2)]
        assert xs[0] == xs[1]


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["name", "value"], title="T")
        table.add_row(["a", 1])
        out = table.render()
        assert out.startswith("T\n")
        assert "| a" in out and "| name" in out

    def test_alignment(self):
        table = TextTable(["l", "r"], aligns=["l", "r"])
        table.add_row(["x", "1"])
        table.add_row(["long", "100"])
        lines = table.render().splitlines()
        assert "| x    |   1 |" in lines

    def test_row_length_mismatch(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only-one"])

    def test_bad_alignment(self):
        with pytest.raises(ValueError):
            TextTable(["a"], aligns=["c"])

    def test_alignment_count_mismatch(self):
        with pytest.raises(ValueError):
            TextTable(["a", "b"], aligns=["l"])

    def test_separator_and_row_count(self):
        table = TextTable(["a"])
        table.add_row(["1"])
        table.add_separator()
        table.add_row(["2"])
        assert table.row_count == 2
        # separator renders as a rule line between the two data rows
        body = table.render().splitlines()
        assert body.count("+---+") == 4

    def test_str_equals_render(self):
        table = TextTable(["a"])
        table.add_row(["1"])
        assert str(table) == table.render()


class TestTimer:
    def test_context_manager(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_peek_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().peek()

    def test_peek_monotone(self):
        t = Timer().start()
        first = t.peek()
        second = t.peek()
        assert second >= first >= 0.0

    def test_restart(self):
        t = Timer().start()
        t.stop()
        t.start()
        assert t.peek() < 10.0
