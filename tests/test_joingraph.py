"""Tests for repro.query.joingraph."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import JoinGraphError
from repro.query.joingraph import JoinGraph

NAMES = ["A", "B", "C", "D", "E"]


def chain_graph(n=5):
    joins = [
        (NAMES[i], "x", NAMES[i + 1], "y")
        for i in range(n - 1)
    ]
    # distinct column names per edge to avoid accidental shared columns
    joins = [
        (left, f"x{i}", right, f"y{i}")
        for i, (left, _l, right, _r) in enumerate(joins)
    ]
    return JoinGraph(NAMES[:n], joins)


def star_graph(n=5):
    joins = [(NAMES[0], f"h{i}", NAMES[i], "k") for i in range(1, n)]
    return JoinGraph(NAMES[:n], joins)


class TestConstruction:
    def test_empty_relations_rejected(self):
        with pytest.raises(JoinGraphError):
            JoinGraph([], [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(JoinGraphError):
            JoinGraph(["A", "A"], [])

    def test_unknown_relation_rejected(self):
        with pytest.raises(JoinGraphError):
            JoinGraph(["A", "B"], [("A", "x", "Z", "y")])

    def test_self_join_rejected(self):
        with pytest.raises(JoinGraphError):
            JoinGraph(["A", "B"], [("A", "x", "A", "y")])

    def test_disconnected_rejected(self):
        with pytest.raises(JoinGraphError):
            JoinGraph(["A", "B", "C"], [("A", "x", "B", "y")])

    def test_single_relation_ok(self):
        graph = JoinGraph(["A"], [])
        assert graph.n == 1 and graph.all_mask == 1

    def test_duplicate_edges_collapse(self):
        graph = JoinGraph(
            ["A", "B"],
            [("A", "x", "B", "y"), ("B", "y", "A", "x")],
        )
        assert len(graph.predicates) == 1

    def test_index_name_round_trip(self):
        graph = chain_graph()
        for i, name in enumerate(NAMES):
            assert graph.index_of(name) == i
            assert graph.name_of(i) == name
        with pytest.raises(JoinGraphError):
            graph.index_of("Z")


class TestTopologyQueries:
    def test_chain_degrees(self):
        graph = chain_graph()
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2
        assert graph.hubs() == []

    def test_star_hub(self):
        graph = star_graph()
        assert graph.hubs() == [0]
        assert graph.degree(0) == 4

    def test_neighbors(self):
        graph = chain_graph()
        assert graph.neighbors(0b00100) == 0b01010
        assert graph.neighbors(0b00001) == 0b00010
        # neighbors excludes the set itself
        assert graph.neighbors(0b00111) == 0b01000

    def test_outside_degree(self):
        graph = star_graph()
        assert graph.outside_degree(0b00011) == 3  # hub+spoke sees 3 spokes

    def test_is_connected(self):
        graph = chain_graph()
        assert graph.is_connected(0b00111)
        assert not graph.is_connected(0b00101)
        assert graph.is_connected(0b00001)
        assert not graph.is_connected(0)

    def test_connected_pairs(self):
        graph = chain_graph()
        assert graph.connected(0b00011, 0b00100)
        assert not graph.connected(0b00001, 0b00100)

    def test_connecting_predicates(self):
        graph = star_graph()
        preds = graph.connecting(0b00001, 0b11110)
        assert len(preds) == 4
        preds = graph.connecting(0b00011, 0b00100)
        assert len(preds) == 1

    def test_connecting_rejects_overlap(self):
        graph = chain_graph()
        with pytest.raises(JoinGraphError):
            graph.connecting(0b00011, 0b00010)

    def test_relations_of(self):
        graph = chain_graph()
        assert graph.relations_of(0b10001) == ["A", "E"]


class TestEquivalenceClasses:
    def test_chain_eclasses_are_pairs(self):
        graph = chain_graph()
        assert len(graph.eclasses) == 4
        assert graph.shared_column_eclasses() == []

    def test_shared_column_closure(self):
        # A.x = B.y and A.x = C.z  =>  implied B.y = C.z
        graph = JoinGraph(
            ["A", "B", "C"],
            [("A", "x", "B", "y"), ("A", "x", "C", "z")],
        )
        assert len(graph.predicates) == 3
        implied = [p for p in graph.predicates if p.implied]
        assert len(implied) == 1
        assert implied[0].mask == 0b110  # B-C edge
        assert graph.shared_column_eclasses() != []

    def test_closure_creates_hub(self):
        # The implied edges turn a shared-column star into a triangle+ graph
        graph = JoinGraph(
            ["A", "B", "C", "D"],
            [
                ("A", "x", "B", "y"),
                ("A", "x", "C", "z"),
                ("A", "x", "D", "w"),
            ],
        )
        # every node now joins every other: all are hubs
        assert set(graph.hubs()) == {0, 1, 2, 3}

    def test_closure_can_be_disabled(self):
        graph = JoinGraph(
            ["A", "B", "C"],
            [("A", "x", "B", "y"), ("A", "x", "C", "z")],
            close_implied_edges=False,
        )
        assert len(graph.predicates) == 2

    def test_eclass_relation_mask(self):
        graph = star_graph()
        for eclass in graph.eclasses:
            mask = graph.eclass_relation_mask(eclass)
            assert mask.bit_count() == 2
        with pytest.raises(JoinGraphError):
            graph.eclass_relation_mask(999)

    def test_eclass_of_column(self):
        graph = chain_graph()
        assert graph.eclass_of_column(0, "x0") is not None
        assert graph.eclass_of_column(0, "unused") is None

    def test_join_columns_of(self):
        graph = chain_graph()
        assert graph.join_columns_of(0) == ["x0"]
        assert sorted(graph.join_columns_of(1)) == ["x1", "y0"]

    def test_describe_mentions_hubs(self):
        assert "hubs: A" in star_graph().describe()


@given(st.integers(min_value=2, max_value=5), st.data())
def test_random_trees_connected(n, data):
    """Random spanning trees are connected and have the right edge count."""
    joins = []
    for node in range(1, n):
        parent = data.draw(st.integers(min_value=0, max_value=node - 1))
        joins.append((NAMES[parent], f"p{node}", NAMES[node], f"c{node}"))
    graph = JoinGraph(NAMES[:n], joins)
    assert graph.is_connected(graph.all_mask)
    assert len([p for p in graph.predicates if not p.implied]) == n - 1
