"""End-to-end integration tests across topologies, optimizers and variants.

These tests exercise the full pipeline — schema, statistics, workload
generation, optimization, plan validation — the way the benchmark harness
does, including a hypothesis fuzzer over random connected join graphs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import WorkloadSpec, make_query
from repro.core import (
    DynamicProgrammingOptimizer,
    SDPOptimizer,
    make_optimizer,
)
from repro.plans import MERGE_JOIN, SORT, validate_plan
from repro.query import JoinGraph, Query

TECHNIQUES = ["DP", "IDP(4)", "SDP", "GOO", "II", "GEQO"]
TOPOLOGIES = [
    ("chain", 7),
    ("cycle", 6),
    ("star", 7),
    ("clique", 5),
    ("star-chain", 8),
]


class TestCrossTopology:
    @pytest.mark.parametrize("topology,size", TOPOLOGIES)
    def test_all_techniques_agree_structurally(
        self, schema, stats, topology, size
    ):
        spec = WorkloadSpec(topology, size, seed=1)
        query = make_query(spec, schema, 0)
        dp_cost = None
        for name in TECHNIQUES:
            result = make_optimizer(name).optimize(query, stats)
            validate_plan(result.plan, query.graph)
            if name == "DP":
                dp_cost = result.cost
            else:
                assert result.cost >= dp_cost - 1e-6, name

    @pytest.mark.parametrize("topology,size", TOPOLOGIES)
    def test_ordered_variants(self, schema, stats, topology, size):
        spec = WorkloadSpec(topology, size, ordered=True, seed=1)
        query = make_query(spec, schema, 0)
        assert query.order_by is not None
        for name in ("DP", "SDP"):
            result = make_optimizer(name).optimize(query, stats)
            validate_plan(result.plan, query.graph)
            plan = result.plan
            # the result either carries the requested order or tops with a
            # sort producing it
            if query.order_by_eclass is not None:
                assert (
                    plan.order == query.order_by_eclass or plan.method == SORT
                )

    def test_shared_hub_column_star(self, schema, stats):
        spec = WorkloadSpec("star", 7, shared_hub_column=True, seed=1)
        query = make_query(spec, schema, 0)
        assert query.graph.shared_column_eclasses() != []
        dp = DynamicProgrammingOptimizer().optimize(query, stats)
        sdp = SDPOptimizer().optimize(query, stats)
        validate_plan(sdp.plan, query.graph)
        assert sdp.cost >= dp.cost - 1e-6
        # implied edges make the graph denser: a merge join on the shared
        # class must at least have been considered
        assert dp.plans_costed > 0

    def test_merge_join_appears_somewhere(self, schema, stats):
        """The plan space really does pick merge joins when they win."""
        methods = set()
        for instance in range(6):
            spec = WorkloadSpec("chain", 8, seed=3)
            query = make_query(spec, schema, instance)
            result = DynamicProgrammingOptimizer().optimize(query, stats)
            for node in result.tree(query).walk():
                methods.add(node.method)
        # chains of indexed joins are classic merge-join territory; accept
        # any evidence the full operator repertoire is in play
        assert len(methods & {MERGE_JOIN, "IndexNestLoop", "HashJoin"}) >= 2


class TestSeedStability:
    def test_same_seed_same_results(self, schema, stats):
        spec = WorkloadSpec("star-chain", 10, seed=9)
        a = make_query(spec, schema, 2)
        b = make_query(spec, schema, 2)
        ra = SDPOptimizer().optimize(a, stats)
        rb = SDPOptimizer().optimize(b, stats)
        assert ra.cost == pytest.approx(rb.cost)
        assert ra.plans_costed == rb.plans_costed


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=7),
    extra_edges=st.integers(min_value=0, max_value=5),
    data=st.data(),
)
def test_fuzz_random_graphs_sdp_sound(
    n, extra_edges, data, fuzz_schema_and_stats
):
    """Random connected graphs: SDP/GOO valid and never beat DP."""
    schema, stats = fuzz_schema_and_stats
    names = list(schema.relation_names[:n])
    joins = []
    used = [0] * n
    cols = {
        name: [c.name for c in schema.relation(name).columns] for name in names
    }

    def next_col(i):
        used[i] += 1
        return cols[names[i]][used[i] % len(cols[names[i]])]

    for node in range(1, n):
        parent = data.draw(st.integers(min_value=0, max_value=node - 1))
        joins.append((names[parent], next_col(parent), names[node], next_col(node)))
    for _ in range(extra_edges):
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        if a == b:
            continue
        joins.append((names[a], next_col(a), names[b], next_col(b)))

    graph = JoinGraph(names, joins)
    query = Query(schema, graph, label="fuzz")
    dp = DynamicProgrammingOptimizer().optimize(query, stats)
    validate_plan(dp.plan, graph)
    for name in ("SDP", "GOO"):
        result = make_optimizer(name).optimize(query, stats)
        validate_plan(result.plan, graph)
        assert result.cost >= dp.cost - 1e-6


@pytest.fixture(scope="module")
def fuzz_schema_and_stats(small_schema, small_stats):
    return small_schema, small_stats
