"""Tests for repro.skyline, including hypothesis property tests."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.skyline import (
    dominates,
    full_skyline,
    naive_skyline,
    pairwise_union_skyline,
    sfs_skyline,
)

vectors_2d = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=0,
    max_size=40,
)

vectors_3d = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=20),
    ),
    min_size=1,
    max_size=40,
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1, 2), (2, 3))

    def test_partial_dominance(self):
        assert dominates((1, 3), (1, 4))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_incomparable(self):
        assert not dominates((1, 5), (5, 1))
        assert not dominates((5, 1), (1, 5))

    @given(vectors_2d.filter(lambda v: len(v) >= 2))
    def test_antisymmetric(self, vecs):
        a, b = vecs[0], vecs[1]
        assert not (dominates(a, b) and dominates(b, a))


class TestSkylineAlgorithms:
    def test_known_case(self):
        vecs = [(1, 4), (2, 2), (3, 3), (4, 1), (4, 4)]
        assert naive_skyline(vecs) == {0, 1, 3}

    def test_empty(self):
        assert naive_skyline([]) == set()
        assert sfs_skyline([]) == set()

    def test_single(self):
        assert naive_skyline([(5, 5)]) == {0}

    def test_duplicates_all_survive(self):
        vecs = [(1, 1), (1, 1), (9, 9)]
        assert naive_skyline(vecs) == {0, 1}
        assert sfs_skyline(vecs) == {0, 1}

    @given(vectors_2d)
    def test_sfs_equals_naive(self, vecs):
        assert sfs_skyline(vecs) == naive_skyline(vecs)

    @given(vectors_2d.filter(bool))
    def test_no_survivor_dominated(self, vecs):
        survivors = sfs_skyline(vecs)
        for i in survivors:
            assert not any(dominates(vecs[j], vecs[i]) for j in range(len(vecs)))

    @given(vectors_2d.filter(bool))
    def test_every_pruned_vector_dominated_by_survivor(self, vecs):
        survivors = sfs_skyline(vecs)
        for i in range(len(vecs)):
            if i not in survivors:
                assert any(dominates(vecs[j], vecs[i]) for j in survivors)

    @given(vectors_2d.filter(bool))
    def test_minimum_of_each_dimension_survives(self, vecs):
        survivors = sfs_skyline(vecs)
        for dim in range(2):
            best = min(v[dim] for v in vecs)
            assert any(vecs[i][dim] == best for i in survivors)

    @given(vectors_2d.filter(bool))
    def test_idempotent(self, vecs):
        survivors = sorted(sfs_skyline(vecs))
        again = sfs_skyline([vecs[i] for i in survivors])
        assert again == set(range(len(survivors)))


class TestMultiway:
    def test_option2_subset_of_option1_without_ties(self):
        vecs = [(1, 9, 3), (2, 8, 4), (3, 7, 5), (9, 1, 2), (5, 5, 9)]
        assert pairwise_union_skyline(vecs) <= full_skyline(vecs)

    @given(vectors_3d)
    def test_union_members_survive_some_projection(self, vecs):
        union = pairwise_union_skyline(vecs)
        for i in union:
            in_some = False
            for dims in ((0, 1), (1, 2), (0, 2)):
                projected = [tuple(v[d] for d in dims) for v in vecs]
                if i in naive_skyline(projected):
                    in_some = True
                    break
            assert in_some

    @given(vectors_3d)
    def test_per_dimension_minimum_survives_option2(self, vecs):
        union = pairwise_union_skyline(vecs)
        for dim in range(3):
            best = min(v[dim] for v in vecs)
            assert any(vecs[i][dim] == best for i in union)

    def test_option1_keeps_more_generally(self):
        # A vector can survive the full skyline while losing every
        # pairwise projection.
        vecs = [(4, 4, 9), (9, 4, 4), (4, 9, 4), (5, 5, 5)]
        assert 3 in full_skyline(vecs)
        assert 3 not in pairwise_union_skyline(vecs)

    def test_paper_worked_example(self):
        # Table 2.2: survivors 123, 125, 145, 156; JCR 135 pruned.
        vecs = [
            (187638, 49386, 3.9e-5),
            (122879, 52132, 1.0e-5),
            (242620, 56021, 1.0e-5),
            (241562, 55388, 6.65e-6),
            (385375, 52632, 4.5e-6),
        ]
        assert pairwise_union_skyline(vecs) == {0, 1, 3, 4}

    def test_custom_dimensions(self):
        vecs = [(1, 2, 9), (2, 1, 0)]
        only_rc = pairwise_union_skyline(vecs, dimensions=((0, 1),))
        assert only_rc == {0, 1}
