"""Tests for the robust fallback ladder (repro.robust.ladder/deadline)."""

from __future__ import annotations

import threading

import pytest

from repro.catalog import SchemaBuilder, analyze
from repro.core.base import SearchBudget
from repro.core.registry import make_optimizer
from repro.errors import (
    OptimizationBudgetExceeded,
    OptimizationCancelled,
    OptimizationError,
)
from repro.plans.validate import validate_plan
from repro.robust import (
    DEFAULT_LADDER,
    Deadline,
    RobustOptimizer,
    RobustResult,
    ladder_from,
)
from tests.conftest import make_star_query


@pytest.fixture(scope="module")
def big_schema():
    """31 relations — enough for the 30-relation star of the ladder test."""
    return SchemaBuilder(
        seed=3, relation_count=31, column_count=33, name="big-31"
    ).build()


@pytest.fixture(scope="module")
def big_stats(big_schema):
    return analyze(big_schema)


class TestLadderFrom:
    def test_ladder_member_keeps_tail(self):
        assert ladder_from("SDP") == ("SDP", "IDP(7)", "IDP(4)", "GOO")
        assert ladder_from("DP") == DEFAULT_LADDER
        assert ladder_from("GOO") == ("GOO",)

    def test_non_member_prepends(self):
        ladder = ladder_from("GEQO")
        assert ladder[0] == "GEQO"
        assert ladder[-1] == "GOO"
        assert "DP" not in ladder

    def test_empty_ladder_rejected(self):
        with pytest.raises(OptimizationError):
            RobustOptimizer(ladder=())

    def test_unknown_rung_rejected_at_construction(self):
        with pytest.raises(OptimizationError, match="Bogus"):
            RobustOptimizer(ladder=("DP", "Bogus"))


class TestFallbackLadder:
    def test_degrades_where_dp_is_infeasible(self, big_schema, big_stats):
        """The acceptance scenario: a 30-relation star under a budget that
        kills DP still yields a valid plan, with the attempt log showing
        the fallback."""
        query = make_star_query(big_schema, 30)
        budget = SearchBudget(max_memory_bytes=None, max_seconds=0.4)
        with pytest.raises(OptimizationBudgetExceeded):
            make_optimizer("DP", budget=budget).optimize(query, big_stats)

        result = RobustOptimizer(budget=budget).optimize(query, big_stats)
        assert isinstance(result, RobustResult)
        validate_plan(result.plan, query.graph)
        assert result.degraded is True
        assert result.fallback_count >= 1
        assert result.attempts[0].technique == "DP"
        assert result.attempts[0].outcome in ("budget-exceeded", "skipped")
        assert result.attempts[-1].outcome == "ok"
        assert result.winner == result.attempts[-1].technique

    def test_memory_trip_falls_to_next_rung(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        # ~1.5k plans * 200 B blows 64 kB; SDP fits comfortably.
        budget = SearchBudget(max_memory_bytes=64_000)
        result = RobustOptimizer(budget=budget).optimize(query, small_stats)
        assert result.degraded
        assert result.attempts[0].stable_key()[:3] == (
            "DP",
            "budget-exceeded",
            "memory",
        )
        validate_plan(result.plan, query.graph)

    def test_no_degradation_when_first_rung_fits(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        result = RobustOptimizer().optimize(query, small_stats)
        assert not result.degraded
        assert result.winner == "DP"
        assert result.technique == "Robust(DP)"
        assert [a.outcome for a in result.attempts] == ["ok"]

    def test_aggregates_cover_all_attempts(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        budget = SearchBudget(max_memory_bytes=64_000)
        result = RobustOptimizer(budget=budget).optimize(query, small_stats)
        # Total costing includes the failed DP attempt, so it exceeds the
        # winning stage's own count.
        winner_plans = result.attempts[-1].plans_costed
        assert result.plans_costed > winner_plans
        assert result.plans_costed == sum(
            a.plans_costed for a in result.attempts
        )

    def test_plans_budget_carved_cumulatively(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        budget = SearchBudget(max_memory_bytes=None, max_plans_costed=1000)
        result = RobustOptimizer(budget=budget).optimize(query, small_stats)
        assert result.degraded
        # Later rungs saw a reduced allowance; eventually the remaining
        # allowance hit zero and rungs were skipped until the terminal one.
        outcomes = [a.outcome for a in result.attempts]
        assert outcomes[-1] == "ok"
        assert "budget-exceeded" in outcomes
        skipped = [a for a in result.attempts if a.outcome == "skipped"]
        for attempt in skipped:
            assert attempt.resource == "costing"

    def test_deadline_exhaustion_skips_to_terminal(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 8)
        budget = SearchBudget(max_memory_bytes=None, max_seconds=0.05)
        result = RobustOptimizer(budget=budget).optimize(query, small_stats)
        validate_plan(result.plan, query.graph)
        assert result.attempts[-1].outcome == "ok"

    def test_terminal_stage_runs_unbudgeted(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        budget = SearchBudget(max_memory_bytes=None, max_plans_costed=1)
        result = RobustOptimizer(
            ladder=("DP", "GOO"), budget=budget
        ).optimize(query, small_stats)
        # GOO costs more than 1 plan, yet succeeds: the terminal rung is
        # exempt so optimize() stays total.
        assert result.winner == "GOO"
        assert result.attempts[-1].plans_costed > 1

    def test_result_tree_is_public_plan(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        budget = SearchBudget(max_memory_bytes=64_000)
        result = RobustOptimizer(budget=budget).optimize(query, small_stats)
        tree = result.tree(query)
        assert tree.rows >= 0

    def test_describe_renders_every_attempt(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        budget = SearchBudget(max_memory_bytes=64_000)
        result = RobustOptimizer(budget=budget).optimize(query, small_stats)
        text = result.describe()
        assert "[degraded]" in text
        for attempt in result.attempts:
            assert attempt.technique in text

    def test_registry_constructs_robust(self):
        optimizer = make_optimizer("Robust")
        assert isinstance(optimizer, RobustOptimizer)
        assert optimizer.ladder == DEFAULT_LADDER

    def test_custom_ladder(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        result = RobustOptimizer(ladder=("SDP", "GOO")).optimize(
            query, small_stats
        )
        assert result.winner == "SDP"
        assert result.technique == "Robust(SDP)"


class TestCancellation:
    def test_cancellation_propagates_not_degrades(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 8)
        robust = RobustOptimizer()
        robust.checkpoint = Deadline(1e-9).checkpoint
        with pytest.raises(OptimizationCancelled):
            robust.optimize(query, small_stats)

    def test_checkpoint_reaches_plain_optimizers(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 8)
        optimizer = make_optimizer("SDP")
        optimizer.checkpoint = Deadline(1e-9).checkpoint
        with pytest.raises(OptimizationCancelled):
            optimizer.optimize(query, small_stats)

    def test_unarmed_deadline_never_cancels(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        optimizer = make_optimizer("SDP")
        deadline = Deadline(None)
        optimizer.checkpoint = deadline.checkpoint
        result = optimizer.optimize(query, small_stats)
        assert result.cost > 0
        assert not deadline.expired

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-1)


class TestConcurrentDeadlines:
    """One wall-clock deadline shared across concurrent optimizations."""

    def _run_threads(self, workers):
        threads = [threading.Thread(target=fn) for fn in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)

    def test_expired_shared_deadline_cancels_every_request(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 8)
        deadline = Deadline(1e-9)
        outcomes = {}

        def request(index):
            optimizer = make_optimizer("SDP")
            optimizer.checkpoint = deadline.checkpoint
            try:
                optimizer.optimize(query, small_stats)
                outcomes[index] = "ok"
            except OptimizationCancelled:
                outcomes[index] = "cancelled"

        self._run_threads(
            [lambda i=i: request(i) for i in range(4)]
        )
        assert outcomes == {i: "cancelled" for i in range(4)}

    def test_cancellation_does_not_leak_across_requests(
        self, small_schema, small_stats
    ):
        """A neighbour's expired deadline must not cancel or degrade us."""
        query = make_star_query(small_schema, 7)
        expired = Deadline(1e-9)
        outcomes = {}

        def doomed(index):
            robust = RobustOptimizer()
            robust.checkpoint = expired.checkpoint
            try:
                robust.optimize(query, small_stats)
                outcomes[index] = "ok"
            except OptimizationCancelled:
                outcomes[index] = "cancelled"

        def unhindered(index):
            robust = RobustOptimizer()
            result = robust.optimize(query, small_stats)
            outcomes[index] = (
                "ok" if not result.degraded and result.cost > 0 else "degraded"
            )

        self._run_threads(
            [lambda: doomed(0), lambda: unhindered(1), lambda: doomed(2)]
        )
        assert outcomes == {0: "cancelled", 1: "ok", 2: "cancelled"}

    def test_generous_shared_deadline_serves_everyone(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 6)
        deadline = Deadline(60.0)
        results = {}

        def request(index):
            optimizer = make_optimizer("SDP")
            optimizer.checkpoint = deadline.checkpoint
            results[index] = optimizer.optimize(query, small_stats)

        self._run_threads([lambda i=i: request(i) for i in range(4)])
        costs = {result.cost for result in results.values()}
        assert len(results) == 4
        assert len(costs) == 1  # concurrency never changes the answer
        assert not deadline.expired

    def test_attempt_logs_stay_per_request(self, small_schema, small_stats):
        """Each robust request keeps its own attempt log under concurrency."""
        query = make_star_query(small_schema, 7)
        logs = {}

        def request(index):
            robust = RobustOptimizer(ladder=("SDP", "GOO"))
            result = robust.optimize(query, small_stats)
            logs[index] = [
                (attempt.technique, attempt.outcome)
                for attempt in result.attempts
            ]

        self._run_threads([lambda i=i: request(i) for i in range(4)])
        assert len(logs) == 4
        reference = logs[0]
        assert all(log == reference for log in logs.values())
        assert reference[0] == ("SDP", "ok")
