"""Tests for the intra-query level-parallel driver (repro.core.parallel).

Bit-identity of the parallel search itself is asserted by the sweep in
``test_kernel_equivalence.py``; this file covers the machinery around it:
the shared-memory plan arena's grow/attach/unlink lifecycle, worker-count
and grid fallback policies, budget trips that fire mid-level against a
live pool, cooperative cancellation, and deterministic worker-crash
recovery via the same :class:`~repro.robust.faults.FaultPlan` schedules
the batch layer uses. Every pool test ends by asserting ``/dev/shm`` is
clean — the release contract is the point.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.bench.workloads import WorkloadSpec, make_query
from repro.catalog import SchemaBuilder, analyze
from repro.core.base import SearchBudget, SearchCounters
from repro.core.kernel import make_planspace, resolve_workers
from repro.core.parallel import ParallelPlanSpace, install_faults, partition_pairs
from repro.core.registry import make_optimizer
from repro.cost.model import CostModel
from repro.errors import OptimizationBudgetExceeded, OptimizationError
from repro.plans.store import (
    SEGMENT_CAPACITY,
    SharedPlanStore,
    attach_shared_views,
)
from repro.robust.faults import FaultPlan
from repro.service.parallel import execution_plan
from repro.util.timer import Timer

BUDGET = SearchBudget(max_seconds=60.0)


def shm_entries() -> list[str]:
    """Live ``/dev/shm`` names created by this package (empty = no leak)."""
    return sorted(glob.glob("/dev/shm/repro_ps_*"))


@pytest.fixture(scope="module")
def pk_schema():
    return SchemaBuilder(
        seed=5, relation_count=10, column_count=12, name="parallel-kernel-10"
    ).build()


@pytest.fixture(scope="module")
def pk_stats(pk_schema):
    return analyze(pk_schema)


# ---------------------------------------------------------------- shared store


class TestSharedPlanStore:
    def test_grows_by_segment_and_reads_across_boundary(self):
        with SharedPlanStore() as store:
            total = SEGMENT_CAPACITY + 7
            for index in range(total):
                store.add(method=1, cost=float(index), rows=2.0 * index)
            assert len(store) == total
            assert store.segment_count == 2
            # Reads on both sides of the segment boundary.
            assert store.cost[SEGMENT_CAPACITY - 1] == float(SEGMENT_CAPACITY - 1)
            assert store.cost[SEGMENT_CAPACITY] == float(SEGMENT_CAPACITY)
            assert store.rows[total - 1] == 2.0 * (total - 1)
        assert shm_entries() == []

    def test_layout_attach_round_trip(self):
        store = SharedPlanStore()
        try:
            for index in range(10):
                store.add(
                    method=2, cost=10.0 + index, rows=1.0, left=index, right=-1
                )
            layout = store.layout()
            assert layout.length == 10
            columns, segments = attach_shared_views(layout)
            try:
                assert [columns["left"][i] for i in range(10)] == list(range(10))
                assert columns["cost"][3] == 13.0
                assert columns["method"][0] == 2
            finally:
                for view in columns.values():
                    view.release()
                for segment in segments.values():
                    segment.close()
        finally:
            store.close()
        assert shm_entries() == []

    def test_attach_view_is_length_bounded(self):
        store = SharedPlanStore()
        try:
            for index in range(5):
                store.add(method=1, cost=float(index), rows=1.0)
            layout = store.layout()
            # Appends after the snapshot are invisible to the view.
            store.add(method=1, cost=99.0, rows=1.0)
            columns, segments = attach_shared_views(layout)
            try:
                view = columns["cost"]
                assert len(view) == 5
                with pytest.raises(IndexError):
                    view[5]
            finally:
                for column in columns.values():
                    column.release()
                for segment in segments.values():
                    segment.close()
        finally:
            store.close()

    def test_close_is_idempotent(self):
        store = SharedPlanStore()
        store.add(method=1, cost=1.0, rows=1.0)
        store.close()
        store.close()
        assert shm_entries() == []


# ---------------------------------------------------------------- policies


class TestWorkerPolicies:
    def test_explicit_count_honored(self):
        assert resolve_workers(5) == (5, None)
        assert resolve_workers(1) == (1, None)

    def test_invalid_counts_rejected(self):
        with pytest.raises(OptimizationError):
            resolve_workers(0)
        with pytest.raises(OptimizationError):
            make_optimizer("DP", budget=BUDGET, workers=0)

    def test_env_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == (3, None)
        monkeypatch.setenv("REPRO_WORKERS", "zero")
        with pytest.raises(OptimizationError):
            resolve_workers()

    def test_single_cpu_records_reason(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert resolve_workers() == (1, "cpu_count")

    def test_auto_count_capped(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        count, reason = resolve_workers()
        assert count == 8 and reason is None

    def test_grid_execution_plan_reasons(self, monkeypatch):
        assert execution_plan(4, 2) == ("serial", 1, "grid_too_small")
        assert execution_plan(1, 16) == ("serial", 1, "workers_requested")
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert execution_plan(None, 16) == ("serial", 1, "cpu_count")
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert execution_plan(None, 16) == ("pool", 8, None)
        assert execution_plan(4, 16) == ("pool", 4, None)


class TestPartitioner:
    def test_one_owner_per_union_mask(self):
        pairs = [(1, 2), (1, 4), (2, 4), (4, 2), (8, 1), (2, 1)]
        mask_order, per_worker = partition_pairs(pairs, 3)
        owner_of = dict(mask_order)
        # First-occurrence order of union masks, each with one owner.
        assert [mask for mask, _ in mask_order] == [3, 5, 6, 9]
        for worker, chunk in enumerate(per_worker):
            for left, right in chunk:
                assert owner_of[left | right] == worker
        # Same-union pairs stay in original relative order on one worker.
        six = per_worker[owner_of[6]]
        assert [p for p in six if p[0] | p[1] == 6] == [(2, 4), (4, 2)]

    def test_single_worker_keeps_original_order(self):
        pairs = [(1, 2), (4, 8), (1, 4)]
        mask_order, per_worker = partition_pairs(pairs, 1)
        assert per_worker == [pairs]
        assert [mask for mask, _ in mask_order] == [3, 12, 5]


# ---------------------------------------------------------------- pool runs


class TestPoolLifecycle:
    def test_budget_trips_mid_level_and_unlinks(self, pk_schema, pk_stats):
        query = make_query(WorkloadSpec("star", 10), pk_schema, 0)
        # Big enough to pass level 1 (base tables), far below the total:
        # the trip fires mid-level against a live pool.
        budget = SearchBudget(max_plans_costed=500)
        optimizer = make_optimizer("DP", budget=budget, workers=2)
        with pytest.raises(OptimizationBudgetExceeded):
            optimizer.optimize(query, pk_stats)
        assert shm_entries() == []

    def test_budget_trip_point_is_deterministic(self, pk_schema, pk_stats):
        query = make_query(WorkloadSpec("star", 9), pk_schema, 1)
        budget = SearchBudget(max_plans_costed=400)
        messages = set()
        for _ in range(2):
            optimizer = make_optimizer("SDP", budget=budget, workers=2)
            with pytest.raises(OptimizationBudgetExceeded) as exc_info:
                optimizer.optimize(query, pk_stats)
            messages.add(str(exc_info.value))
        assert len(messages) == 1
        assert shm_entries() == []

    def test_pool_survives_cancellation(self, pk_schema, pk_stats):
        """Cooperative cancel: workers answer the flag, pool stays usable."""
        import repro.core.parallel as parallel_mod

        query = make_query(WorkloadSpec("star", 10), pk_schema, 0)
        optimizer = make_optimizer(
            "DP", budget=SearchBudget(max_plans_costed=500), workers=2
        )
        with pytest.raises(OptimizationBudgetExceeded):
            optimizer.optimize(query, pk_stats)
        pool = parallel_mod._POOL
        assert pool is not None and not pool.broken
        assert all(handle.process.is_alive() for handle in pool.workers)
        # The same pool then serves a clean run, bit-identical to serial.
        clean = make_optimizer("DP", budget=BUDGET, workers=2).optimize(
            query, pk_stats
        )
        serial = make_optimizer("DP", budget=BUDGET).optimize(query, pk_stats)
        assert clean.cost == serial.cost
        assert clean.plans_costed == serial.plans_costed
        assert shm_entries() == []

    def test_worker_crash_recovers_identically(self, pk_schema, pk_stats):
        """A worker killed mid-level degrades to inline, same answer, no leak."""
        query = make_query(WorkloadSpec("star", 8), pk_schema, 2)
        serial = make_optimizer("DP", budget=BUDGET).optimize(query, pk_stats)
        previous = install_faults(FaultPlan(seed=0, crash_fraction=1.0))
        try:
            crashed = make_optimizer("DP", budget=BUDGET, workers=2).optimize(
                query, pk_stats
            )
        finally:
            install_faults(previous)
        assert crashed.cost == serial.cost
        assert crashed.plans_costed == serial.plans_costed
        assert crashed.jcrs_created == serial.jcrs_created
        assert shm_entries() == []
        # And the next pooled run rebuilds a fresh pool and still agrees.
        rebuilt = make_optimizer("DP", budget=BUDGET, workers=2).optimize(
            query, pk_stats
        )
        assert rebuilt.cost == serial.cost
        assert rebuilt.plans_costed == serial.plans_costed
        assert shm_entries() == []

    def test_release_is_idempotent(self, pk_schema, pk_stats):
        query = make_query(WorkloadSpec("chain", 6), pk_schema, 0)
        counters = SearchCounters(BUDGET, Timer())
        space = make_planspace(
            query,
            pk_stats,
            CostModel(),
            counters,
            workers=2,
            level_parallel=True,
        )
        assert isinstance(space, ParallelPlanSpace)
        space.release()
        space.release()
        assert shm_entries() == []


# ---------------------------------------------------------------- facade


class TestFacade:
    def test_workers_flows_through_optimize(self, pk_schema, pk_stats):
        import repro

        query = make_query(WorkloadSpec("star", 8), pk_schema, 0)
        serial = repro.optimize(query, technique="SDP", stats=pk_stats)
        pooled = repro.optimize(
            query, technique="SDP", stats=pk_stats, workers=2
        )
        assert pooled.cost == serial.cost
        assert pooled.plans_costed == serial.plans_costed
        assert shm_entries() == []

    def test_workers_validated(self, pk_schema, pk_stats):
        import repro

        query = make_query(WorkloadSpec("star", 8), pk_schema, 0)
        with pytest.raises(OptimizationError):
            repro.optimize(query, stats=pk_stats, workers=0)
