"""Tests for repro.catalog: columns, relations, schemas, statistics."""

from __future__ import annotations

import pytest

from repro.catalog import (
    Column,
    Index,
    Relation,
    Schema,
    SchemaBuilder,
    analyze,
    paper_schema,
)
from repro.errors import CatalogError


def _relation(name="T", rows=1000, cols=3, indexed=0):
    columns = tuple(Column(name=f"c{i}", domain_size=100) for i in range(cols))
    indexes = (Index(column_name=f"c{indexed}"),) if indexed is not None else ()
    return Relation(name=name, row_count=rows, columns=columns, indexes=indexes)


class TestColumn:
    def test_valid(self):
        col = Column(name="a", domain_size=10, width=8)
        assert col.width == 8

    def test_invalid_domain(self):
        with pytest.raises(CatalogError):
            Column(name="a", domain_size=0)

    def test_invalid_width(self):
        with pytest.raises(CatalogError):
            Column(name="a", domain_size=10, width=0)

    def test_empty_name(self):
        with pytest.raises(CatalogError):
            Column(name="", domain_size=10)


class TestRelation:
    def test_pages_positive(self):
        assert _relation(rows=0).page_count == 1
        assert _relation(rows=10**6).page_count > 100

    def test_row_width_includes_overhead(self):
        rel = _relation(cols=2)
        assert rel.row_width > 8

    def test_duplicate_columns_rejected(self):
        cols = (Column("a", 10), Column("a", 10))
        with pytest.raises(CatalogError):
            Relation(name="T", row_count=1, columns=cols)

    def test_index_on_unknown_column_rejected(self):
        with pytest.raises(CatalogError):
            Relation(
                name="T",
                row_count=1,
                columns=(Column("a", 10),),
                indexes=(Index("zz"),),
            )

    def test_column_lookup(self):
        rel = _relation()
        assert rel.column("c1").name == "c1"
        with pytest.raises(CatalogError):
            rel.column("nope")

    def test_has_index(self):
        rel = _relation(indexed=0)
        assert rel.has_index_on("c0")
        assert not rel.has_index_on("c1")
        assert rel.indexed_columns == ("c0",)


class TestSchema:
    def test_lookup_and_contains(self):
        schema = Schema(relations=(_relation("A"), _relation("B", rows=5)))
        assert "A" in schema and "Z" not in schema
        assert schema.relation("B").row_count == 5
        with pytest.raises(CatalogError):
            schema.relation("Z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(CatalogError):
            Schema(relations=(_relation("A"), _relation("A")))

    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            Schema(relations=())

    def test_largest_relation(self):
        schema = Schema(relations=(_relation("A", rows=10), _relation("B", rows=99)))
        assert schema.largest_relation().name == "B"


class TestSchemaBuilder:
    def test_paper_shape(self):
        schema = paper_schema(seed=0)
        assert len(schema) == 25
        rows = [r.row_count for r in schema.relations]
        assert min(rows) == 100
        assert max(rows) == 2_500_000
        assert all(len(r.columns) == 24 for r in schema.relations)
        assert all(len(r.indexes) == 1 for r in schema.relations)

    def test_total_size_about_paper(self):
        # The paper's database is ~1.5 GB.
        size = paper_schema(seed=0).total_bytes()
        assert 0.5e9 < size < 4e9

    def test_deterministic(self):
        a, b = paper_schema(seed=3), paper_schema(seed=3)
        assert a.relation_names == b.relation_names
        assert [r.indexed_columns for r in a.relations] == [
            r.indexed_columns for r in b.relations
        ]

    def test_seed_changes_layout(self):
        a, b = paper_schema(seed=1), paper_schema(seed=2)
        assert [r.indexed_columns for r in a.relations] != [
            r.indexed_columns for r in b.relations
        ]

    def test_key_indexed_columns(self):
        schema = SchemaBuilder(seed=0).build()
        for rel in schema.relations:
            col = rel.column(rel.indexed_columns[0])
            assert col.domain_size == rel.row_count

    def test_key_indexing_can_be_disabled(self):
        schema = SchemaBuilder(seed=0, key_indexed_columns=False).build()
        mismatches = sum(
            1
            for rel in schema.relations
            if rel.column(rel.indexed_columns[0]).domain_size != rel.row_count
        )
        assert mismatches > 0

    def test_invalid_params(self):
        with pytest.raises(CatalogError):
            SchemaBuilder(relation_count=0)
        with pytest.raises(CatalogError):
            SchemaBuilder(column_count=0)
        with pytest.raises(CatalogError):
            SchemaBuilder(indexes_per_relation=99, column_count=5)

    def test_scaled_schema(self):
        schema = SchemaBuilder(seed=0, relation_count=50).build()
        assert len(schema) == 50


class TestAnalyze:
    def test_covers_all_relations(self, small_schema):
        stats = analyze(small_schema)
        assert len(stats) == len(small_schema)
        for name in small_schema.relation_names:
            assert name in stats

    def test_column_stats_sane(self, small_schema):
        stats = analyze(small_schema)
        for rel in small_schema.relations:
            table = stats.table(rel.name)
            assert table.row_count == rel.row_count
            assert table.page_count == rel.page_count
            for col in rel.columns:
                cs = table.column(col.name)
                assert 1 <= cs.n_distinct <= min(col.domain_size, rel.row_count)
                assert 0 < cs.most_common_frac <= 1
                assert cs.has_index == rel.has_index_on(col.name)

    def test_missing_lookups_raise(self, small_schema):
        stats = analyze(small_schema)
        with pytest.raises(CatalogError):
            stats.table("nope")
        with pytest.raises(CatalogError):
            stats.table(small_schema.relation_names[0]).column("nope")

    def test_skewed_statistics_differ(self):
        uniform = analyze(SchemaBuilder(seed=0, relation_count=5).build())
        skewed = analyze(
            SchemaBuilder(seed=0, relation_count=5, skewed=True).build()
        )
        name = uniform.table_names[-1]
        u_cols = uniform.table(name).columns
        s_cols = skewed.table(name).columns
        assert any(
            s_cols[c].n_distinct < u_cols[c].n_distinct for c in u_cols
        )
