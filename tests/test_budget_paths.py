"""Budget-exceeded behavior across every registered optimizer.

Satellite coverage for the robustness work: the fallback ladder is only
sound if *every* rung signals budget exhaustion the same way — raising
:class:`OptimizationBudgetExceeded` with an accurate ``resource`` /
``limit`` / ``used`` triple — and if no search can slip over a limit
inside the final check interval (the tail gap).
"""

from __future__ import annotations

import pytest

from repro.core.base import SearchBudget
from repro.core.registry import available_techniques, make_optimizer
from repro.errors import OptimizationBudgetExceeded
from tests.conftest import make_star_query

#: Every registered technique that is supposed to *raise* on budget
#: exhaustion — i.e. all of them except the robust façade, whose contract
#: is the opposite (degrade, never raise).
BUDGETED_TECHNIQUES = [
    name for name in available_techniques() if name != "Robust"
]


@pytest.fixture(scope="module")
def query(small_schema):
    return make_star_query(small_schema, 8)


@pytest.mark.parametrize("technique", BUDGETED_TECHNIQUES)
def test_costing_budget_trips_with_accurate_fields(
    technique, query, small_stats
):
    budget = SearchBudget(max_memory_bytes=None, max_plans_costed=2)
    optimizer = make_optimizer(technique, budget=budget)
    with pytest.raises(OptimizationBudgetExceeded) as err:
        optimizer.optimize(query, small_stats)
    assert err.value.resource == "costing"
    assert err.value.limit == 2
    assert err.value.used > 2


@pytest.mark.parametrize("technique", BUDGETED_TECHNIQUES)
def test_budget_error_carries_effort_annotations(
    technique, query, small_stats
):
    budget = SearchBudget(max_memory_bytes=None, max_plans_costed=2)
    optimizer = make_optimizer(technique, budget=budget)
    with pytest.raises(OptimizationBudgetExceeded) as err:
        optimizer.optimize(query, small_stats)
    # Supervisors (the fallback ladder) account aborted attempts via these.
    assert err.value.plans_costed > 2
    assert err.value.modeled_memory_mb > 0
    assert err.value.elapsed_seconds >= 0


class TestTailGap:
    """A just-over-limit run must raise even if the search ends between
    periodic checks (fewer than _CHECK_INTERVAL events from the limit)."""

    def test_goo_just_over_limit_raises(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        # GOO on 5 relations costs a few dozen plans — far fewer than the
        # 2048-event check interval, so only the end-of-search check can
        # catch this overrun.
        unlimited = make_optimizer("GOO")
        baseline = unlimited.optimize(query, small_stats)
        assert baseline.plans_costed < 2048

        budget = SearchBudget(
            max_memory_bytes=None,
            max_plans_costed=baseline.plans_costed - 1,
        )
        with pytest.raises(OptimizationBudgetExceeded) as err:
            make_optimizer("GOO", budget=budget).optimize(query, small_stats)
        assert err.value.resource == "costing"

    def test_at_limit_run_still_passes(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        baseline = make_optimizer("GOO").optimize(query, small_stats)
        budget = SearchBudget(
            max_memory_bytes=None, max_plans_costed=baseline.plans_costed
        )
        result = make_optimizer("GOO", budget=budget).optimize(
            query, small_stats
        )
        assert result.plans_costed == baseline.plans_costed
