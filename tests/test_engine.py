"""Tests for the execution engine (materialization + executor)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import SchemaBuilder, analyze
from repro.core import DynamicProgrammingOptimizer, SDPOptimizer, make_optimizer
from repro.engine import Database, Executor, materialize
from repro.engine.executor import _combine_keys, _match_pairs
from repro.errors import CatalogError, PlanError
from repro.query import JoinGraph, Query, chain_joins, star_joins


@pytest.fixture(scope="module")
def exec_schema():
    """A schema with duplicate-heavy columns so joins actually match."""
    return SchemaBuilder(
        seed=3,
        relation_count=8,
        column_count=6,
        min_cardinality=50,
        max_cardinality=4000,
        min_domain=10,
        max_domain=500,
        name="exec-8",
    ).build()


@pytest.fixture(scope="module")
def db(exec_schema):
    return materialize(exec_schema, seed=4)


@pytest.fixture(scope="module")
def db_stats(db):
    return analyze(db.schema)


class TestMaterialize:
    def test_row_counts_match_schema(self, exec_schema, db):
        for rel in exec_schema.relations:
            assert db.row_count(rel.name) == rel.row_count

    def test_values_within_domain(self, exec_schema, db):
        for rel in exec_schema.relations:
            for col in rel.columns:
                values = db.column(rel.name, col.name)
                assert values.min() >= 0
                assert values.max() < col.domain_size

    def test_deterministic(self, exec_schema):
        a = materialize(exec_schema, seed=7)
        b = materialize(exec_schema, seed=7)
        name = exec_schema.relation_names[0]
        assert np.array_equal(a.column(name, "c1"), b.column(name, "c1"))

    def test_seed_changes_data(self, exec_schema):
        a = materialize(exec_schema, seed=1)
        b = materialize(exec_schema, seed=2)
        name = exec_schema.relation_names[-1]
        assert not np.array_equal(a.column(name, "c1"), b.column(name, "c1"))

    def test_scale(self, exec_schema):
        db = materialize(exec_schema, scale=0.5)
        for rel in exec_schema.relations:
            assert db.row_count(rel.name) <= max(4, rel.row_count // 2 + 1)
        assert db.schema.name.endswith("@0.5")

    def test_invalid_scale(self, exec_schema):
        with pytest.raises(CatalogError):
            materialize(exec_schema, scale=0.0)

    def test_index_orders_sorted(self, exec_schema, db):
        for rel in exec_schema.relations:
            for column in rel.indexed_columns:
                order = db.index_order(rel.name, column)
                values = db.column(rel.name, column)[order]
                assert np.all(np.diff(values) >= 0)

    def test_missing_lookups(self, db):
        with pytest.raises(CatalogError):
            db.column("nope", "c1")
        with pytest.raises(CatalogError):
            db.index_order(db.schema.relation_names[0], "not-indexed")

    def test_column_subset(self, exec_schema):
        db = materialize(exec_schema, columns_per_relation=2)
        rel = exec_schema.relations[0]
        kept = set(db.tables[rel.name])
        assert len(kept) <= 3  # two columns plus possibly the indexed one
        assert set(rel.indexed_columns) <= kept

    def test_skewed_data_head_heavy(self):
        schema = SchemaBuilder(
            seed=0, relation_count=3, column_count=4,
            min_cardinality=5000, max_cardinality=5000,
            skewed=True, skew_decay=0.5,
        ).build()
        db = materialize(schema, seed=0)
        values = db.column(schema.relation_names[0], "c1")
        # with decay 0.5, value 0 holds ~half the rows
        frac = float(np.mean(values == 0))
        assert 0.4 < frac < 0.6


class TestJoinKernel:
    def test_match_pairs_simple(self):
        lk = np.array([1, 2, 2, 3])
        rk = np.array([2, 3, 4])
        l_pos, r_pos = _match_pairs(lk, rk)
        pairs = set(zip(l_pos.tolist(), r_pos.tolist()))
        assert pairs == {(1, 0), (2, 0), (3, 1)}

    def test_match_pairs_empty(self):
        l_pos, r_pos = _match_pairs(np.array([1]), np.array([2]))
        assert len(l_pos) == 0 and len(r_pos) == 0
        l_pos, r_pos = _match_pairs(np.array([], dtype=np.int64), np.array([1]))
        assert len(l_pos) == 0

    def test_match_pairs_many_to_many(self):
        lk = np.array([5, 5])
        rk = np.array([5, 5, 5])
        l_pos, r_pos = _match_pairs(lk, rk)
        assert len(l_pos) == 6

    def test_combine_keys_collision_free(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        combined = _combine_keys([a, b])
        assert len(np.unique(combined)) == 4


class TestExecutor:
    def _query(self, db, size=4, topology="chain"):
        names = list(db.schema.relation_names[:size])
        if topology == "chain":
            joins = chain_joins(db.schema, names)
        else:
            joins = star_joins(db.schema, names[0], names[1:])
        graph = JoinGraph(names, joins)
        return Query(db.schema, graph, label=f"exec-{topology}-{size}")

    def _ground_truth_pair(self, db, query):
        """Brute-force row count of the first join edge."""
        pred = query.graph.predicates[0]
        left_name = query.graph.relation_names[pred.left]
        right_name = query.graph.relation_names[pred.right]
        lv = db.column(left_name, pred.left_column)
        rv = db.column(right_name, pred.right_column)
        count = 0
        for value in np.unique(lv):
            count += int(np.sum(lv == value)) * int(np.sum(rv == value))
        return count

    def test_two_way_join_exact(self, db, db_stats):
        names = list(db.schema.relation_names[:2])
        joins = chain_joins(db.schema, names)
        graph = JoinGraph(names, joins)
        query = Query(db.schema, graph)
        plan = DynamicProgrammingOptimizer().optimize(query, db_stats).plan
        result = Executor(query, db).run(plan)
        assert result.row_count == self._ground_truth_pair(db, query)

    def test_all_join_methods_same_result(self, db, db_stats):
        """DP and SDP plans (different operators) give identical results."""
        query = self._query(db, size=5, topology="star")
        counts = set()
        for name in ("DP", "SDP", "GOO", "IDP(4)"):
            plan = make_optimizer(name).optimize(query, db_stats).plan
            counts.add(Executor(query, db).run(plan).row_count)
        assert len(counts) == 1

    def test_actuals_collected_per_operator(self, db, db_stats):
        query = self._query(db, size=4)
        plan = SDPOptimizer().optimize(query, db_stats).plan
        result = Executor(query, db).run(plan)
        assert len(result.actuals) == plan.node_count()
        assert all(a.q_error >= 1.0 for a in result.actuals)

    def test_scan_actuals_exact(self, db, db_stats):
        query = self._query(db, size=3)
        plan = DynamicProgrammingOptimizer().optimize(query, db_stats).plan
        result = Executor(query, db).run(plan)
        for actual in result.actuals:
            if actual.method in ("SeqScan", "IndexScan"):
                assert actual.q_error == pytest.approx(1.0)

    def test_ordered_query_output_sorted(self, db, db_stats):
        names = list(db.schema.relation_names[:3])
        joins = chain_joins(db.schema, names)
        graph = JoinGraph(names, joins)
        rel, col = joins[0][2], joins[0][3]
        query = Query(db.schema, graph, order_by=(rel, col))
        plan = DynamicProgrammingOptimizer().optimize(query, db_stats).plan
        executor = Executor(query, db)
        final = executor._execute(plan)
        keys = executor._order_keys(final, query.order_by_eclass)
        assert keys is not None
        assert np.all(np.diff(keys) >= 0)

    def test_estimates_in_right_ballpark(self, db, db_stats):
        """With duplicate-heavy data the estimator should be decent."""
        query = self._query(db, size=4)
        plan = DynamicProgrammingOptimizer().optimize(query, db_stats).plan
        result = Executor(query, db).run(plan)
        # generous bound: within two orders of magnitude on this easy data
        assert result.max_q_error < 100

    def test_cartesian_rejected(self, db):
        from repro.plans.records import NESTLOOP, SEQ_SCAN, PlanRecord

        names = list(db.schema.relation_names[:3])
        joins = chain_joins(db.schema, names)
        query = Query(db.schema, JoinGraph(names, joins))
        a = PlanRecord(0b001, 10, 1, SEQ_SCAN, rel=0)
        c = PlanRecord(0b100, 10, 1, SEQ_SCAN, rel=2)
        bad = PlanRecord(0b101, 100, 5, NESTLOOP, left=a, right=c)
        with pytest.raises(PlanError):
            Executor(query, db).run(bad)
