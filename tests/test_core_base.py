"""Tests for repro.core.base (budgets, counters) and repro.core.table."""

from __future__ import annotations

import pytest

from repro.core.base import (
    BYTES_PER_COSTED_PLAN,
    BYTES_PER_RETAINED_PLAN,
    SearchBudget,
    SearchCounters,
)
from repro.core.table import JCRTable
from repro.cost.cardinality import CardinalityEstimator
from repro.errors import OptimizationBudgetExceeded, OptimizationError
from repro.query.joingraph import JoinGraph
from repro.util.timer import Timer


def counters(budget=None, checkpoint=None):
    return SearchCounters(
        budget or SearchBudget.unlimited(), Timer().start(), checkpoint=checkpoint
    )


class TestSearchBudgetValidation:
    @pytest.mark.parametrize(
        "field", ["max_memory_bytes", "max_plans_costed", "max_seconds"]
    )
    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_zero_and_negative_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            SearchBudget(**{field: value})

    def test_none_means_unlimited(self):
        budget = SearchBudget(
            max_memory_bytes=None, max_plans_costed=None, max_seconds=None
        )
        assert budget == SearchBudget.unlimited()

    def test_positive_values_accepted(self):
        budget = SearchBudget(
            max_memory_bytes=1, max_plans_costed=1, max_seconds=0.001
        )
        assert budget.max_plans_costed == 1


class TestSearchCounters:
    def test_plans_accumulate(self):
        c = counters()
        c.note_plans_costed(5)
        c.note_plans_costed()
        assert c.plans_costed == 6
        assert c.arena_bytes == 6 * BYTES_PER_COSTED_PLAN

    def test_retained_accumulate(self):
        c = counters()
        c.note_retained(3)
        assert c.retained_slots == 3
        assert c.arena_bytes == 3 * BYTES_PER_RETAINED_PLAN

    def test_memory_budget_trips(self):
        budget = SearchBudget(max_memory_bytes=10 * BYTES_PER_COSTED_PLAN)
        c = counters(budget)
        c.note_plans_costed(11)
        with pytest.raises(OptimizationBudgetExceeded) as err:
            c.check_budget()
        assert err.value.resource == "memory"

    def test_costing_budget_trips(self):
        budget = SearchBudget(max_memory_bytes=None, max_plans_costed=5)
        c = counters(budget)
        c.note_plans_costed(6)
        with pytest.raises(OptimizationBudgetExceeded) as err:
            c.check_budget()
        assert err.value.resource == "costing"

    def test_time_budget_trips(self):
        budget = SearchBudget(max_memory_bytes=None, max_seconds=1e-9)
        c = counters(budget)
        c.note_plans_costed()
        with pytest.raises(OptimizationBudgetExceeded) as err:
            c.check_budget()
        assert err.value.resource == "time"

    def test_periodic_check_fires_automatically(self):
        budget = SearchBudget(max_memory_bytes=100)
        c = counters(budget)
        with pytest.raises(OptimizationBudgetExceeded):
            for _ in range(10_000):
                c.note_plans_costed()

    def test_arena_reset_tracks_peak(self):
        c = counters()
        c.note_plans_costed(100)
        peak = c.arena_bytes
        c.reset_arena(carry_bytes=10)
        assert c.arena_bytes == 10
        assert c.modeled_memory_bytes == peak
        assert c.plans_costed == 100  # counters are cumulative

    def test_pruned_jcrs_keep_arena(self):
        c = counters()
        c.note_plans_costed(10)
        before = c.arena_bytes
        c.note_jcrs_pruned(5)
        assert c.arena_bytes == before
        assert c.jcrs_pruned == 5

    def test_unlimited_budget_never_trips(self):
        c = counters(SearchBudget.unlimited())
        c.note_plans_costed(10**6)
        c.check_budget()

    def test_total_events_accumulate(self):
        c = counters()
        c.note_plans_costed(5)
        c.note_retained(2)
        c.note_pairs(3)
        assert c.total_events == 10

    def test_checkpoint_hook_fires_on_check(self):
        seen = []
        c = counters(checkpoint=seen.append)
        c.check_budget()
        assert seen == [c]

    def test_checkpoint_hook_fires_periodically(self):
        seen = []
        c = counters(checkpoint=lambda counters: seen.append(counters.total_events))
        for _ in range(3000):
            c.note_plans_costed()
        assert seen == [2048]

    def test_checkpoint_exception_propagates(self):
        def bomb(_counters):
            raise RuntimeError("cancelled")

        c = counters(checkpoint=bomb)
        with pytest.raises(RuntimeError):
            c.check_budget()


class TestJCRTable:
    @pytest.fixture
    def table(self, small_schema, small_stats):
        names = list(small_schema.relation_names[:4])
        joins = [(names[i], "c1", names[i + 1], "c2") for i in range(3)]
        graph = JoinGraph(names, joins)
        return JCRTable(CardinalityEstimator(graph, small_stats))

    def test_get_or_create(self, table):
        jcr, created = table.get_or_create(0b11)
        assert created and jcr.level == 2
        again, created2 = table.get_or_create(0b11)
        assert again is jcr and not created2

    def test_levels(self, table):
        table.get_or_create(0b01)
        table.get_or_create(0b10)
        table.get_or_create(0b11)
        assert len(table.level(1)) == 2
        assert len(table.level(2)) == 1
        assert table.level(9) == []

    def test_replace_level(self, table):
        a, _ = table.get_or_create(0b011)
        b, _ = table.get_or_create(0b110)
        pruned = table.replace_level(2, [a])
        assert pruned == 1
        assert table.get(0b110) is None
        assert table.get(0b011) is a

    def test_require(self, table):
        with pytest.raises(OptimizationError):
            table.require(0b1111)
        jcr, _ = table.get_or_create(0b1)
        assert table.require(0b1) is jcr

    def test_insert_rejects_duplicates(self, table):
        jcr, _ = table.get_or_create(0b1)
        fresh = JCRTable(table.estimator)
        fresh.insert(jcr)
        with pytest.raises(OptimizationError):
            fresh.insert(jcr)

    def test_len_and_contains(self, table):
        table.get_or_create(0b1)
        assert len(table) == 1
        assert 0b1 in table and 0b10 not in table
