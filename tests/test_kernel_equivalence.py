"""Fast-vs-reference kernel equivalence (the tentpole's safety net).

The mask-native struct-of-arrays kernel (:mod:`repro.core.planspace`) must
be a pure performance change: for any query, any technique, it has to
produce the *same search* as the preserved eager object-graph kernel
(:mod:`repro.core.reference`) — bit-identical winning cost, identical plan
tree, identical counter values. These tests sweep randomized chain, star,
and clique instances (<= 10 relations, several workload seeds) through
DP, SDP, and IDP under both kernels and compare everything observable.

The same contract extends to the level-parallel driver
(:mod:`repro.core.parallel`): for any worker count — including a real
forked pool on a single-core host — DP and SDP must match the serial
fast kernel bit-for-bit, and techniques that cannot level-parallelize
(IDP) must silently run the serial kernel under ``REPRO_KERNEL=parallel``.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import WorkloadSpec, make_query
from repro.catalog import SchemaBuilder, analyze
from repro.core.base import SearchBudget
from repro.core.kernel import kernel_name, make_planspace
from repro.core.registry import make_optimizer

BUDGET = SearchBudget(max_seconds=60.0)

TECHNIQUES = ("DP", "SDP", "IDP(4)")

# (topology, size) cells; clique kept smallest — its DP pair count grows
# fastest and this sweep runs 2 kernels x 3 techniques per instance.
GRAPHS = (
    ("chain", 8),
    ("chain", 10),
    ("star", 8),
    ("star", 10),
    ("clique", 6),
    ("clique", 7),
)

INSTANCES = (0, 1, 2)


@pytest.fixture(scope="module")
def eq_schema():
    return SchemaBuilder(
        seed=3,
        relation_count=12,
        column_count=12,
        max_cardinality=80_000,
        max_domain=60_000,
        name="kernel-eq-12",
    ).build()


@pytest.fixture(scope="module")
def eq_stats(eq_schema):
    return analyze(eq_schema)


def serialize(plan) -> tuple:
    """Full recursive identity of a plan record: shape, methods, numbers."""
    children = tuple(
        serialize(child) for child in (plan.left, plan.right) if child is not None
    )
    return (
        plan.method,
        plan.mask,
        plan.rel,
        plan.eclass,
        plan.order,
        plan.rows,
        plan.cost,
        children,
    )


def run(technique: str, query, stats, kernel: str):
    optimizer = make_optimizer(technique, budget=BUDGET)
    # Force the kernel through the same seam production uses.
    import repro.core.kernel as kernel_mod

    monkey = pytest.MonkeyPatch()
    monkey.setenv(kernel_mod.KERNEL_ENV, kernel)
    try:
        return optimizer.optimize(query, stats)
    finally:
        monkey.undo()


@pytest.mark.parametrize("topology,size", GRAPHS, ids=[f"{t}-{s}" for t, s in GRAPHS])
@pytest.mark.parametrize("technique", TECHNIQUES)
def test_kernels_agree(topology, size, technique, eq_schema, eq_stats):
    spec = WorkloadSpec(topology, size)
    for instance in INSTANCES:
        query = make_query(spec, eq_schema, instance)
        fast = run(technique, query, eq_stats, "fast")
        reference = run(technique, query, eq_stats, "reference")

        label = f"{technique} {spec.label} instance={instance}"
        assert fast.cost == reference.cost, label
        assert fast.rows == reference.rows, label
        assert serialize(fast.plan) == serialize(reference.plan), label
        assert fast.plans_costed == reference.plans_costed, label
        assert fast.jcrs_created == reference.jcrs_created, label
        assert fast.jcrs_pruned == reference.jcrs_pruned, label
        assert fast.modeled_memory_mb == reference.modeled_memory_mb, label


#: Explicit counts force the parallel driver even on a single-core host:
#: 1 exercises the in-process partition/merge path, 2 and 4 a real pool.
WORKER_COUNTS = (1, 2, 4)


@pytest.mark.parametrize("topology,size", GRAPHS, ids=[f"{t}-{s}" for t, s in GRAPHS])
@pytest.mark.parametrize("technique", ("DP", "SDP"))
def test_parallel_driver_agrees(topology, size, technique, eq_schema, eq_stats):
    spec = WorkloadSpec(topology, size)
    for instance in (0, 1):
        query = make_query(spec, eq_schema, instance)
        serial = make_optimizer(technique, budget=BUDGET).optimize(query, eq_stats)
        for workers in WORKER_COUNTS:
            parallel = make_optimizer(
                technique, budget=BUDGET, workers=workers
            ).optimize(query, eq_stats)
            label = (
                f"{technique} {spec.label} instance={instance} workers={workers}"
            )
            assert parallel.cost == serial.cost, label
            assert parallel.rows == serial.rows, label
            assert serialize(parallel.plan) == serialize(serial.plan), label
            assert parallel.plans_costed == serial.plans_costed, label
            assert parallel.jcrs_created == serial.jcrs_created, label
            assert parallel.jcrs_pruned == serial.jcrs_pruned, label
            assert parallel.modeled_memory_mb == serial.modeled_memory_mb, label


def test_parallel_env_kernel_covers_non_level_techniques(eq_schema, eq_stats):
    # IDP is not level-synchronous, so REPRO_KERNEL=parallel must hand it
    # the serial fast kernel — same result, no pool involved.
    query = make_query(WorkloadSpec("star", 8), eq_schema, 0)
    fast = run("IDP(4)", query, eq_stats, "fast")
    parallel = run("IDP(4)", query, eq_stats, "parallel")
    assert parallel.cost == fast.cost
    assert serialize(parallel.plan) == serialize(fast.plan)
    assert parallel.plans_costed == fast.plans_costed


def test_parallel_env_kernel_dp_identical(eq_schema, eq_stats):
    # REPRO_KERNEL=parallel with no explicit worker count resolves via
    # the auto policy (worker count is host-dependent); the search result
    # must not be.
    query = make_query(WorkloadSpec("chain", 8), eq_schema, 0)
    fast = run("DP", query, eq_stats, "fast")
    parallel = run("DP", query, eq_stats, "parallel")
    assert parallel.cost == fast.cost
    assert serialize(parallel.plan) == serialize(fast.plan)
    assert parallel.plans_costed == fast.plans_costed
    assert parallel.jcrs_created == fast.jcrs_created


# SQL-first coverage: the same three-kernel contract on queries carrying
# selections and interesting orders. The labels pick the plan-space
# features apart: an equality selection, selections plus an unindexed
# non-join ORDER BY (enforcer sort only), a range selection plus a
# join-column ORDER BY (order propagation through joins), and a
# selection plus an indexed non-join ORDER BY (the ordered-index-scan
# access path).
SQL_LABELS = (
    "suppliers-by-region",
    "shipping-priority",
    "big-customer-orders",
    "nation-suppliers-ordered",
)


@pytest.fixture(scope="module")
def tpch():
    from repro.workloads import tpch_lite_queries, tpch_lite_schema

    schema = tpch_lite_schema()
    queries = {q.label: q for q in tpch_lite_queries(schema)}
    return schema, analyze(schema), queries


@pytest.mark.parametrize("label", SQL_LABELS)
@pytest.mark.parametrize("technique", TECHNIQUES)
def test_kernels_agree_on_selections_and_orders(label, technique, tpch):
    _, stats, queries = tpch
    query = queries[label]
    fast = run(technique, query, stats, "fast")
    reference = run(technique, query, stats, "reference")
    tag = f"{technique} {label}"
    assert fast.cost == reference.cost, tag
    assert fast.rows == reference.rows, tag
    assert serialize(fast.plan) == serialize(reference.plan), tag
    assert fast.plans_costed == reference.plans_costed, tag
    assert fast.jcrs_created == reference.jcrs_created, tag
    assert fast.jcrs_pruned == reference.jcrs_pruned, tag


@pytest.mark.parametrize("label", SQL_LABELS)
@pytest.mark.parametrize("technique", ("DP", "SDP"))
def test_parallel_driver_agrees_on_selections_and_orders(label, technique, tpch):
    _, stats, queries = tpch
    query = queries[label]
    serial = make_optimizer(technique, budget=BUDGET).optimize(query, stats)
    for workers in (1, 2):
        parallel = make_optimizer(
            technique, budget=BUDGET, workers=workers
        ).optimize(query, stats)
        tag = f"{technique} {label} workers={workers}"
        assert parallel.cost == serial.cost, tag
        assert serialize(parallel.plan) == serialize(serial.plan), tag
        assert parallel.plans_costed == serial.plans_costed, tag


# The dpconv kernel's layered (min,+) convolution is exact only under a
# C_out cost model; inside that regime it must reproduce exhaustive DP's
# search bit-for-bit — cost, plan tree, and counters — across every
# topology, with the fast and reference kernels (also in their C_out
# branches) as the second and third witnesses.


def run_cout(technique: str, query, stats, kernel: str):
    from repro.cost import COUT_COST_MODEL

    optimizer = make_optimizer(
        technique, budget=BUDGET, cost_model=COUT_COST_MODEL
    )
    import repro.core.kernel as kernel_mod

    monkey = pytest.MonkeyPatch()
    monkey.setenv(kernel_mod.KERNEL_ENV, kernel)
    try:
        return optimizer.optimize(query, stats)
    finally:
        monkey.undo()


@pytest.mark.parametrize("topology,size", GRAPHS, ids=[f"{t}-{s}" for t, s in GRAPHS])
@pytest.mark.parametrize("technique", TECHNIQUES)
def test_dpconv_kernel_agrees_under_cout(
    topology, size, technique, eq_schema, eq_stats
):
    spec = WorkloadSpec(topology, size)
    for instance in INSTANCES:
        query = make_query(spec, eq_schema, instance)
        dpconv = run_cout(technique, query, eq_stats, "dpconv")
        fast = run_cout(technique, query, eq_stats, "fast")
        reference = run_cout(technique, query, eq_stats, "reference")

        label = f"{technique} {spec.label} instance={instance}"
        assert dpconv.cost == fast.cost == reference.cost, label
        assert dpconv.rows == fast.rows, label
        assert serialize(dpconv.plan) == serialize(fast.plan), label
        assert serialize(dpconv.plan) == serialize(reference.plan), label
        assert dpconv.plans_costed == fast.plans_costed, label
        assert dpconv.plans_costed == reference.plans_costed, label
        assert dpconv.jcrs_created == fast.jcrs_created, label
        assert dpconv.jcrs_pruned == fast.jcrs_pruned, label
        assert dpconv.modeled_memory_mb == fast.modeled_memory_mb, label


def test_dpconv_technique_matches_dp_under_cout(eq_schema, eq_stats):
    # technique="DPconv" (which defaults its model to C_out) against DP
    # under the same model: the winning cost must be bit-identical.
    from repro.cost import COUT_COST_MODEL

    for topology, size in GRAPHS:
        query = make_query(WorkloadSpec(topology, size), eq_schema, 0)
        dp = make_optimizer(
            "DP", budget=BUDGET, cost_model=COUT_COST_MODEL
        ).optimize(query, eq_stats)
        dpconv = make_optimizer("DPconv", budget=BUDGET).optimize(
            query, eq_stats
        )
        label = f"{topology}-{size}"
        assert dpconv.cost == dp.cost, label
        assert serialize(dpconv.plan) == serialize(dp.plan), label
        assert dpconv.plans_costed == dp.plans_costed, label


def test_dpconv_kernel_rejects_non_cout_models(eq_schema, eq_stats):
    from repro.errors import DPconvUnsupportedError

    query = make_query(WorkloadSpec("chain", 5), eq_schema, 0)
    # Via the environment seam, with the (non-C_out) default model.
    with pytest.raises(DPconvUnsupportedError):
        run("DP", query, eq_stats, "dpconv")
    # Via the technique registry with an explicit non-C_out model.
    from repro.cost import DEFAULT_COST_MODEL

    optimizer = make_optimizer("DPconv", cost_model=DEFAULT_COST_MODEL)
    with pytest.raises(DPconvUnsupportedError):
        optimizer.optimize(query, eq_stats)


def test_kernel_env_selects_reference(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "reference")
    assert kernel_name() == "reference"
    monkeypatch.setenv("REPRO_KERNEL", "fast")
    assert kernel_name() == "fast"
    monkeypatch.delenv("REPRO_KERNEL")
    assert kernel_name() == "fast"


def test_explicit_kernel_argument_overrides_env(monkeypatch, eq_schema, eq_stats):
    from repro.core.base import SearchCounters
    from repro.core.planspace import PlanSpace
    from repro.core.reference import ReferencePlanSpace
    from repro.cost.model import CostModel
    from repro.util.timer import Timer

    query = make_query(WorkloadSpec("chain", 4), eq_schema, 0)
    counters = SearchCounters(BUDGET, Timer())
    model = CostModel()
    monkeypatch.setenv("REPRO_KERNEL", "reference")
    space = make_planspace(query, eq_stats, model, counters, kernel="fast")
    assert isinstance(space, PlanSpace)
    space = make_planspace(query, eq_stats, model, counters)
    assert isinstance(space, ReferencePlanSpace)
