"""Tests for the sdp-bench CLI."""

from __future__ import annotations

import pytest

from repro.bench.cli import main
from repro.bench.experiments.common import clear_caches


@pytest.fixture(autouse=True)
def _fresh(monkeypatch):
    clear_caches()
    monkeypatch.setenv("REPRO_BENCH_INSTANCES", "1")
    monkeypatch.setenv("REPRO_BENCH_HEAVY_INSTANCES", "1")
    monkeypatch.setenv("REPRO_BENCH_MAX_SECONDS", "10")
    yield
    clear_caches()


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table-1.1" in out and "figure-2.2" in out


def test_unknown_experiment(capsys):
    assert main(["table-9.9"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_single_experiment(capsys):
    assert main(["table-2.2"]) == 0
    out = capsys.readouterr().out
    assert "matches the paper" in out
    assert "done in" in out


def test_flag_overrides(capsys):
    code = main(["table-2.2", "--instances", "1", "--seed", "5"])
    assert code == 0


def test_experiment_with_comparison(capsys):
    assert main(["figure-2.2"]) == 0
    out = capsys.readouterr().out
    assert "Survivors" in out


def test_robust_report_smoke(capsys):
    assert main(["robust-report", "--instances", "2"]) == 0
    out = capsys.readouterr().out
    assert "budget-exceeded" in out
    assert "Fallbacks" in out
    assert "Degraded winners" in out


def test_robust_flag_accepted(capsys):
    assert main(["table-2.2", "--robust"]) == 0
    assert "done in" in capsys.readouterr().out


def test_output_directory(tmp_path, capsys):
    out_dir = tmp_path / "reports"
    assert main(["table-2.2", "--output", str(out_dir)]) == 0
    written = out_dir / "table-2.2.txt"
    assert written.exists()
    assert "matches the paper" in written.read_text()
