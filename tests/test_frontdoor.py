"""Tests for the overload-robust serving front door.

Unit tests drive every component deterministically — brownout ladder
validation, the load controller on a fake clock, the statistics-refresh
circuit breaker, admission shedding, tenant isolation — and a
``stress``-marked smoke test asserts the end-to-end serving contract at
4x sustained overload with chaos faults installed.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.base import SearchBudget
from repro.errors import AdmissionRejected, ServiceError, TenantBudgetExhausted
from repro.service import (
    DEFAULT_BROWNOUT_LEVELS,
    BrownoutLevel,
    FrontDoor,
    FrontDoorConfig,
    FrontDoorStats,
    LoadController,
    OptimizationService,
    StatsRefreshBreaker,
    TenantPolicy,
    TenantRegistry,
)
from repro.service.frontdoor import _scaled_budget
from tests.conftest import make_star_query


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def service(small_schema, small_stats):
    svc = OptimizationService(
        technique="SDP", budget=SearchBudget(max_seconds=10.0)
    )
    svc.install_statistics(small_stats)
    return svc


@pytest.fixture
def query(small_schema):
    return make_star_query(small_schema, 5)


# ---------------------------------------------------------------------------
# Brownout ladder
# ---------------------------------------------------------------------------


class TestBrownoutLevel:
    def test_default_ladder_shape(self):
        levels = [entry.level for entry in DEFAULT_BROWNOUT_LEVELS]
        assert levels == list(range(len(DEFAULT_BROWNOUT_LEVELS)))
        assert DEFAULT_BROWNOUT_LEVELS[0].entry is None
        assert all(entry.entry for entry in DEFAULT_BROWNOUT_LEVELS[1:])
        scales = [entry.budget_scale for entry in DEFAULT_BROWNOUT_LEVELS]
        assert scales == sorted(scales, reverse=True)

    def test_level_zero_must_be_baseline(self):
        with pytest.raises(ServiceError):
            BrownoutLevel(0, "SDP")

    def test_degraded_levels_need_an_entry(self):
        with pytest.raises(ServiceError):
            BrownoutLevel(1, None)

    def test_negative_level_rejected(self):
        with pytest.raises(ServiceError):
            BrownoutLevel(-1, "GOO")

    def test_budget_scale_bounds(self):
        with pytest.raises(ServiceError):
            BrownoutLevel(1, "SDP", budget_scale=0.0)
        with pytest.raises(ServiceError):
            BrownoutLevel(1, "SDP", budget_scale=1.5)


class TestScaledBudget:
    def test_full_scale_is_identity(self):
        base = SearchBudget(max_plans_costed=1000, max_seconds=2.0)
        assert _scaled_budget(base, 1.0) is base

    def test_shrinks_plan_and_time_allowances(self):
        base = SearchBudget(max_plans_costed=1000, max_seconds=2.0)
        scaled = _scaled_budget(base, 0.5)
        assert scaled.max_plans_costed == 500
        assert scaled.max_seconds == pytest.approx(1.0)
        assert scaled.max_memory_bytes == base.max_memory_bytes

    def test_unlimited_allowances_stay_unlimited(self):
        base = SearchBudget(max_plans_costed=None, max_seconds=None)
        scaled = _scaled_budget(base, 0.25)
        assert scaled.max_plans_costed is None
        assert scaled.max_seconds is None

    def test_never_scales_to_zero_plans(self):
        base = SearchBudget(max_plans_costed=2)
        assert _scaled_budget(base, 0.01).max_plans_costed == 1


# ---------------------------------------------------------------------------
# Load controller
# ---------------------------------------------------------------------------


class TestLoadController:
    def make(self, clock, **kwargs):
        kwargs.setdefault("max_level", 3)
        kwargs.setdefault("cooldown_seconds", 1.0)
        return LoadController(clock=clock, **kwargs)

    def test_starts_at_baseline(self):
        controller = self.make(FakeClock())
        assert controller.level == 0

    def test_high_occupancy_escalates_one_level_per_cooldown(self):
        clock = FakeClock()
        controller = self.make(clock)
        # Cooldown has not elapsed since construction: no change yet.
        assert controller.evaluate(8, 8) == 0
        clock.advance(1.0)
        assert controller.evaluate(8, 8) == 1
        # Rate-limited: an immediate re-evaluation cannot skip levels.
        assert controller.evaluate(8, 8) == 1
        clock.advance(1.0)
        assert controller.evaluate(8, 8) == 2
        clock.advance(1.0)
        assert controller.evaluate(8, 8) == 3
        clock.advance(1.0)
        assert controller.evaluate(8, 8) == 3  # capped at max_level

    def test_latency_alone_never_escalates(self):
        clock = FakeClock()
        controller = self.make(clock, latency_slo_seconds=0.5)
        for _ in range(64):
            controller.observe(10.0)
        assert controller.p95() > controller.latency_slo_seconds
        clock.advance(5.0)
        assert controller.evaluate(0, 8) == 0

    def test_latency_with_queue_pressure_escalates(self):
        clock = FakeClock()
        controller = self.make(clock, latency_slo_seconds=0.5)
        for _ in range(64):
            controller.observe(10.0)
        clock.advance(1.0)
        # Half-full queue is below the high watermark but above the low
        # one, so the p95 breach counts.
        assert controller.evaluate(4, 8) == 1

    def test_calm_queue_deescalates(self):
        clock = FakeClock()
        controller = self.make(clock)
        clock.advance(1.0)
        assert controller.evaluate(8, 8) == 1
        # Still slow in the window, but the queue is empty: stand down.
        for _ in range(64):
            controller.observe(10.0)
        clock.advance(1.0)
        assert controller.evaluate(0, 8) == 0

    def test_mid_band_occupancy_holds_level(self):
        clock = FakeClock()
        controller = self.make(clock)
        clock.advance(1.0)
        assert controller.evaluate(8, 8) == 1
        clock.advance(1.0)
        # Between the watermarks with a healthy p95: neither heavy nor calm.
        assert controller.evaluate(4, 8) == 1

    def test_empty_window_p95_is_zero(self):
        assert self.make(FakeClock()).p95() == 0.0

    def test_watermark_validation(self):
        with pytest.raises(ServiceError):
            LoadController(high_watermark=0.25, low_watermark=0.75)
        with pytest.raises(ServiceError):
            LoadController(high_watermark=1.5)


# ---------------------------------------------------------------------------
# Statistics-refresh circuit breaker
# ---------------------------------------------------------------------------


class RecordingService:
    """Stands in for OptimizationService: records installed snapshots."""

    def __init__(self):
        self.installed = []

    def install_statistics(self, stats):
        self.installed.append(stats)


class TestStatsRefreshBreaker:
    def test_first_refresh_applies(self):
        service = RecordingService()
        breaker = StatsRefreshBreaker(service, 1.0, clock=FakeClock())
        assert breaker.install("s1") == "applied"
        assert service.installed == ["s1"]
        assert breaker.state == "closed"

    def test_storm_coalesces_newest_wins(self):
        service = RecordingService()
        clock = FakeClock()
        breaker = StatsRefreshBreaker(service, 1.0, clock=clock)
        breaker.install("s1")
        assert breaker.install("s2") == "coalesced"
        assert breaker.install("s3") == "coalesced"
        assert breaker.state == "open"
        assert service.installed == ["s1"]
        # Inside the interval flush() is a no-op (breaker still open).
        assert breaker.flush() is False
        clock.advance(1.0)
        assert breaker.state == "half-open"
        assert breaker.flush() is True
        # Only the newest parked snapshot lands; s2 was already stale.
        assert service.installed == ["s1", "s3"]
        assert breaker.state == "closed"
        assert (breaker.applied, breaker.coalesced) == (2, 2)

    def test_spaced_refreshes_all_apply(self):
        service = RecordingService()
        clock = FakeClock()
        breaker = StatsRefreshBreaker(service, 1.0, clock=clock)
        for snapshot in ("s1", "s2", "s3"):
            assert breaker.install(snapshot) == "applied"
            clock.advance(1.0)
        assert service.installed == ["s1", "s2", "s3"]
        assert breaker.coalesced == 0

    def test_flush_without_pending_is_noop(self):
        breaker = StatsRefreshBreaker(RecordingService(), 1.0, clock=FakeClock())
        assert breaker.flush() is False

    def test_interval_validation(self):
        with pytest.raises(ServiceError):
            StatsRefreshBreaker(RecordingService(), 0.0)


# ---------------------------------------------------------------------------
# Front-door configuration
# ---------------------------------------------------------------------------


class TestFrontDoorConfig:
    def test_queue_capacity_validation(self):
        with pytest.raises(ServiceError):
            FrontDoorConfig(queue_capacity=0)

    def test_workers_validation(self):
        with pytest.raises(ServiceError):
            FrontDoorConfig(workers=0)

    def test_brownout_levels_must_start_at_zero(self):
        with pytest.raises(ServiceError):
            FrontDoorConfig(brownout_levels=(BrownoutLevel(1, "SDP"),))

    def test_brownout_levels_must_be_consecutive(self):
        with pytest.raises(ServiceError):
            FrontDoorConfig(
                brownout_levels=(BrownoutLevel(0, None), BrownoutLevel(2, "GOO"))
            )

    def test_stats_properties(self):
        stats = FrontDoorStats(
            admitted=5, completed=4, shed_queue=2, shed_tenant=1, shed_shutdown=3
        )
        assert stats.shed == 6
        assert stats.submitted == 11


# ---------------------------------------------------------------------------
# Serving
# ---------------------------------------------------------------------------


class TestFrontDoorServing:
    def test_unloaded_request_is_baseline(self, service, query):
        # A huge cooldown pins the controller at level 0 for the whole test.
        config = FrontDoorConfig(workers=2, cooldown_seconds=60.0)
        with FrontDoor(service, config) as door:
            first = door.optimize(query)
            assert first.brownout_level == 0
            assert first.entry == service.technique
            assert not first.degraded
            assert first.result.plan is not None
            assert not first.result.cache_hit
            assert first.total_seconds >= first.queue_wait_seconds >= 0.0
            # The baseline path is the plain service path: it caches.
            second = door.optimize(query)
            assert second.result.cache_hit
            assert second.result.plan == first.result.plan
        stats = door.stats()
        assert stats.admitted == stats.completed == 2
        assert stats.shed == 0
        assert stats.rung_entries == {service.technique: 2}

    def test_submit_before_start_raises(self, service, query):
        door = FrontDoor(service)
        with pytest.raises(ServiceError):
            door.submit(query)


class TestFrontDoorSql:
    def _analyzed_service(self, small_schema):
        svc = OptimizationService(
            technique="SDP", budget=SearchBudget(max_seconds=10.0)
        )
        svc.analyze(small_schema)
        return svc

    def _sql(self, small_schema):
        names = small_schema.relation_names
        return (
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 AND {names[0]}.c3 < 40"
        )

    def test_sql_submission_matches_query_path(self, small_schema):
        from repro.query import parse_sql

        sql = self._sql(small_schema)
        svc = self._analyzed_service(small_schema)
        config = FrontDoorConfig(workers=2, cooldown_seconds=60.0)
        with FrontDoor(svc, config) as door:
            from_sql = door.optimize(sql)
            from_query = door.optimize(parse_sql(small_schema, sql))
            assert from_sql.result.cost == from_query.result.cost
            assert from_sql.result.sql == sql
            assert from_sql.result.query is not None
            # Same canonical form: the second submission is a warm hit.
            assert from_query.result.cache_hit

    def test_malformed_sql_rejected_at_admission(self, small_schema):
        from repro.errors import QueryError

        svc = self._analyzed_service(small_schema)
        with FrontDoor(svc) as door:
            with pytest.raises(QueryError):
                door.submit("SELECT * FROM nope WHERE")
        assert door.stats().admitted == 0

    def test_sql_needs_analyzed_schema(self, service, small_schema):
        # The shared fixture installs statistics but never a schema.
        with FrontDoor(service) as door:
            with pytest.raises(ServiceError, match="schema"):
                door.submit(self._sql(small_schema))

    def test_submit_after_close_is_typed_shutdown(self, service, query):
        door = FrontDoor(service).start()
        door.close()
        with pytest.raises(AdmissionRejected) as excinfo:
            door.submit(query)
        assert excinfo.value.reason == "shutdown"

    def test_restart_after_close_rejected(self, service):
        door = FrontDoor(service).start()
        door.close()
        with pytest.raises(ServiceError):
            door.start()

    def test_tenant_budget_rejection_and_isolation(self, service, query):
        clock = FakeClock()
        tenants = TenantRegistry(
            default_policy=TenantPolicy(bucket_capacity=1.0, refill_per_second=1.0),
            clock=clock,
        )
        config = FrontDoorConfig(workers=1, cooldown_seconds=60.0)
        with FrontDoor(service, config, tenants=tenants) as door:
            door.optimize(query, tenant="loud")
            with pytest.raises(TenantBudgetExhausted) as excinfo:
                door.submit(query, tenant="loud")
            assert excinfo.value.reason == "tenant-budget"
            assert excinfo.value.tenant == "loud"
            assert excinfo.value.retry_after_seconds > 0.0
            # One tenant's storm is not another tenant's problem.
            quiet = door.optimize(query, tenant="quiet")
            assert quiet.result.plan is not None
            # The bucket refills continuously: the loud tenant recovers.
            clock.advance(1.0)
            recovered = door.optimize(query, tenant="loud")
            assert recovered.result.plan is not None
        assert door.stats().shed_tenant == 1

    def _gate(self, service):
        """Make the service's optimize block until the event is set."""
        release = threading.Event()
        real = service.optimize

        def gated(query, stats=None, **kwargs):
            assert release.wait(timeout=10.0), "test gate never released"
            return real(query, stats, **kwargs)

        service.optimize = gated
        return release

    def test_queue_full_shedding(self, service, query):
        release = self._gate(service)
        config = FrontDoorConfig(
            queue_capacity=2, workers=1, cooldown_seconds=60.0
        )
        with FrontDoor(service, config) as door:
            first = door.submit(query)
            for _ in range(200):  # wait for the worker to dequeue it
                if door.queue_depth == 0:
                    break
                time.sleep(0.01)
            queued = [door.submit(query), door.submit(query)]
            with pytest.raises(AdmissionRejected) as excinfo:
                door.submit(query)
            assert excinfo.value.reason == "queue-full"
            release.set()
            for future in [first, *queued]:
                assert future.result(timeout=10.0).result.plan is not None
        stats = door.stats()
        assert stats.admitted == 3
        assert stats.completed == 3
        assert stats.shed_queue == 1

    def test_close_without_drain_rejects_queued(self, service, query):
        release = self._gate(service)
        config = FrontDoorConfig(
            queue_capacity=4, workers=1, cooldown_seconds=60.0
        )
        door = FrontDoor(service, config).start()
        in_flight = door.submit(query)
        for _ in range(200):
            if door.queue_depth == 0:
                break
            time.sleep(0.01)
        queued = [door.submit(query), door.submit(query)]
        door.close(drain=False, timeout=0.2)
        for future in queued:
            with pytest.raises(AdmissionRejected) as excinfo:
                future.result(timeout=1.0)
            assert excinfo.value.reason == "shutdown"
        # The in-flight request was admitted before close: it is served.
        release.set()
        assert in_flight.result(timeout=10.0).result.plan is not None
        assert door.stats().shed_shutdown == 2

    def test_brownout_serving_and_recovery(self, service, query):
        clock = FakeClock()
        config = FrontDoorConfig(
            queue_capacity=8, workers=1, cooldown_seconds=1.0
        )
        with FrontDoor(service, config, clock=clock) as door:
            # Drive the controller up the ladder by hand: the fake clock
            # freezes between our evaluate() calls, so the worker's own
            # re-evaluation cannot change the level underneath the test.
            clock.advance(1.0)
            assert door.controller.evaluate(8, 8) == 1
            clock.advance(1.0)
            assert door.controller.evaluate(8, 8) == 2

            browned = door.optimize(query)
            assert browned.brownout_level == 2
            assert browned.entry == "IDP(4)"
            assert browned.degraded
            assert browned.result.plan is not None
            assert not browned.result.cache_hit
            # Degraded plans are never cached: a repeat under brownout
            # still misses.
            again = door.optimize(query)
            assert not again.result.cache_hit

            # Recovery: a calm queue walks the level back to baseline and
            # full-quality results start landing in the cache again.
            clock.advance(1.0)
            assert door.controller.evaluate(0, 8) == 1
            clock.advance(1.0)
            assert door.controller.evaluate(0, 8) == 0
            full = door.optimize(query)
            assert full.brownout_level == 0
            assert not full.degraded
            assert not full.result.cache_hit
            warmed = door.optimize(query)
            assert warmed.result.cache_hit
        mix = door.stats().rung_entries
        assert mix == {"IDP(4)": 2, service.technique: 2}

    def test_stats_refresh_routes_through_breaker(self, service, small_stats):
        config = FrontDoorConfig(
            workers=1, stats_refresh_interval_seconds=60.0, cooldown_seconds=60.0
        )
        with FrontDoor(service, config) as door:
            epoch = service.stats_epoch
            assert door.install_statistics(small_stats) == "applied"
            assert service.stats_epoch == epoch + 1
            # A storm inside the interval does not churn the epoch.
            for _ in range(5):
                assert door.install_statistics(small_stats) == "coalesced"
            assert service.stats_epoch == epoch + 1
            assert door.breaker.state == "open"


# ---------------------------------------------------------------------------
# The serving contract under sustained overload (opt-in: pytest -m stress)
# ---------------------------------------------------------------------------


@pytest.mark.stress
class TestOverloadContract:
    def test_chaos_overload_never_drops_a_request(self, schema, stats):
        from repro.bench import LoadScenario, run_load

        scenario = LoadScenario(
            label="smoke-overload",
            duration_seconds=1.5,
            overload_factor=4.0,
            queue_capacity=8,
            latency_fault_seconds=0.005,
            latency_fault_every=64,
            stats_churn_interval_seconds=0.2,
            query_sizes=(8, 9, 10),
            technique="DP",
        )
        report = run_load(scenario, schema=schema, stats=stats)

        # Every submitted request ended in a plan or a typed rejection.
        assert report["errors"] == 0
        assert report["hung"] == 0
        shed_total = sum(report["shed"].values())
        assert report["completed"] + shed_total == report["submitted"]
        assert report["completed"] > 0

        # 4x overload must be *visible*: either the bounded queue shed or
        # brownout moved requests off the baseline technique (usually both).
        off_baseline = sum(
            count
            for entry, count in report["rung_mix"].items()
            if entry != scenario.technique
        )
        assert report["shed"]["queue-full"] > 0 or off_baseline > 0
