"""Fixture-tree tests for every repro.lint checker (RL001-RL008).

Each test builds a minimal ``src/repro`` tree on disk, runs one checker
over it, and asserts the checker fires (positive) or stays silent
(negative). Fixture trees are never imported — the linter works on
source text alone — so the snippets only need to parse.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import all_checkers, load_project, run_checkers

pytestmark = pytest.mark.lint


def make_tree(tmp_path, files: dict[str, str]):
    """Write ``files`` (relative to a ``src/`` root) and return both roots."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path / "src"


def lint_tree(tmp_path, files: dict[str, str], code: str):
    """Run just the checker for ``code`` over the fixture tree."""
    src = make_tree(tmp_path, files)
    checkers = [c for c in all_checkers() if c.code == code]
    assert checkers, f"no checker registered for {code}"
    return run_checkers(load_project([src]), checkers)


# ---------------------------------------------------------------- RL001


class TestLayering:
    def test_upward_import_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/cost/model.py": """\
                from repro.core.base import Optimizer
            """,
        }, "RL001")
        assert len(findings) == 1
        assert findings[0].code == "RL001"
        assert "rank" in findings[0].message

    def test_downward_and_sideways_imports_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                from repro.cost.model import CostModel
                from repro.plans.records import PlanRecord
                import repro.core.base
            """,
        }, "RL001")
        assert findings == []

    def test_lazy_function_body_import_still_counts(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                def build():
                    from repro.robust.ladder import RobustOptimizer
                    return RobustOptimizer
            """,
        }, "RL001")
        assert len(findings) == 1

    def test_unranked_package_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/mystery/x.py": "x = 1\n",
        }, "RL001")
        assert len(findings) == 1
        assert "no layer rank" in findings[0].message

    def test_waiver_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/cost/model.py": """\
                # lint: waive[RL001] intentional back-edge for the test
                from repro.core.base import Optimizer
            """,
        }, "RL001")
        assert findings == []

    def test_dpconv_module_is_layer_covered(self, tmp_path):
        # Layer ranks are keyed by subpackage, so a new core/ module
        # (core/dpconv.py) is in scope automatically: its real imports
        # (skyline, cost, errors) point down and are clean, while an
        # upward edge in the same file fires without any registration.
        findings = lint_tree(tmp_path, {
            "src/repro/core/dpconv.py": """\
                from repro.cost.cout import COUT_COST_MODEL
                from repro.errors import DPconvUnsupportedError
                from repro.skyline.dominance import bound_covered
            """,
        }, "RL001")
        assert findings == []

        findings = lint_tree(tmp_path, {
            "src/repro/core/dpconv.py": """\
                from repro.skyline.dominance import bound_covered
                from repro.service.frontdoor import FrontDoor
            """,
        }, "RL001")
        assert len(findings) == 1
        assert "service" in findings[0].message


# ---------------------------------------------------------------- RL002


class TestDeterminism:
    def test_wall_clock_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                import time

                def elapsed():
                    return time.time()
            """,
        }, "RL002")
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message

    def test_global_random_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                import random

                def pick(xs):
                    return random.choice(xs)
            """,
        }, "RL002")
        assert len(findings) == 1
        assert "global" in findings[0].message

    def test_unseeded_random_constructor_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                import random

                RNG = random.Random()
            """,
        }, "RL002")
        assert len(findings) == 1
        assert "unseeded" in findings[0].message

    def test_seeded_random_constructor_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                import random

                RNG = random.Random(7)
            """,
        }, "RL002")
        assert findings == []

    def test_locally_rebound_receiver_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                def shuffle(random, xs):
                    random.shuffle(xs)
            """,
        }, "RL002")
        assert findings == []

    def test_environ_outside_kernel_fires_inside_kernel_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                import os

                MODE = os.environ.get("REPRO_MODE")
            """,
            "src/repro/core/kernel.py": """\
                import os

                KERNEL = os.environ.get("REPRO_KERNEL", "fast")
            """,
        }, "RL002")
        assert len(findings) == 1
        assert findings[0].path.endswith("x.py")

    def test_set_iteration_fires_sorted_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/x.py": """\
                def bad(items):
                    return [i for i in {x.key for x in items}]

                def good(items):
                    for key in sorted({x.key for x in items}):
                        yield key
            """,
        }, "RL002")
        assert len(findings) == 1
        assert findings[0].line == 2

    def test_non_kernel_layer_out_of_scope(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/bench/x.py": """\
                import time

                def stamp():
                    return time.time()
            """,
        }, "RL002")
        assert findings == []

    def test_dpconv_module_is_determinism_covered(self, tmp_path):
        # core/dpconv.py is not the kernel-selection module, so the env
        # exemption does not extend to it — an env read there fires.
        findings = lint_tree(tmp_path, {
            "src/repro/core/dpconv.py": """\
                import os

                LAYERS = os.environ.get("REPRO_DPCONV_LAYERS")
            """,
        }, "RL002")
        assert len(findings) == 1
        assert findings[0].path.endswith("dpconv.py")


# ---------------------------------------------------------------- RL003


class TestFloatDiscipline:
    def test_cost_equality_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                def tie(cost, best_cost):
                    return cost == best_cost
            """,
        }, "RL003")
        assert len(findings) == 1
        assert "JCR.improves" in findings[0].message

    def test_selectivity_inequality_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/cost/x.py": """\
                def changed(selectivity, previous):
                    return selectivity != previous
            """,
        }, "RL003")
        assert len(findings) == 1

    def test_attribute_operand_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/skyline/x.py": """\
                def same(a, b):
                    return a.cost == b.cost
            """,
        }, "RL003")
        assert len(findings) == 1

    def test_strict_ordering_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                def improves(cost, best_cost):
                    return cost < best_cost
            """,
        }, "RL003")
        assert findings == []

    def test_exempt_identifiers_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                def same_model(cost_model, other):
                    return cost_model == other
            """,
        }, "RL003")
        assert findings == []

    def test_non_kernel_layer_out_of_scope(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/bench/x.py": """\
                def identical(cost, baseline_cost):
                    return cost == baseline_cost
            """,
        }, "RL003")
        assert findings == []


# ---------------------------------------------------------------- RL004


_UNCHARGED_LOOP = """\
    def enumerate_pairs(space, table, jcrs):
        for left, right in jcrs:
            space.join(table, left, right)
"""


class TestBudgetCharging:
    def test_uncharged_join_loop_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": _UNCHARGED_LOOP,
        }, "RL004")
        assert len(findings) == 1
        assert "enumerate_pairs" in findings[0].message

    def test_note_pairs_in_function_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                def enumerate_pairs(space, table, jcrs, counters):
                    for left, right in jcrs:
                        space.join(table, left, right)
                    counters.note_pairs(len(jcrs))
            """,
        }, "RL004")
        assert findings == []

    def test_counters_handed_to_callee_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                def enumerate_pairs(query, stats, counters):
                    space = make_planspace(query, stats, counters)
                    for left, right in space.pairs():
                        space.join(None, left, right)
            """,
        }, "RL004")
        assert findings == []

    def test_class_level_counters_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                class Walker:
                    def __init__(self, space, counters):
                        self.space = space
                        self.counters = counters

                    def cost(self, table, order):
                        current = order[0]
                        for rel in order[1:]:
                            current = self.space.join(table, current, rel)
                        return current
            """,
        }, "RL004")
        assert findings == []

    def test_pair_generator_fires_and_file_waiver_suppresses(self, tmp_path):
        generator = textwrap.dedent("""\
            def csg_cmp_pairs(neighbors):
                for s1 in neighbors:
                    for s2 in neighbors:
                        yield (s1, s2)
        """)
        findings = lint_tree(tmp_path, {
            "src/repro/core/gen.py": generator,
        }, "RL004")
        assert findings and all(f.code == "RL004" for f in findings)

        waived = lint_tree(tmp_path, {
            "src/repro/core/gen2.py": (
                "# lint: waive-file[RL004] consumers charge\n" + generator
            ),
        }, "RL004")
        assert [f for f in waived if f.path.endswith("gen2.py")] == []

    def test_chunked_convolution_charge_clean(self, tmp_path):
        # The dpconv kernel's shape: pair enumeration buckets work into
        # layers, the (min,+) combine loop charges note_plans_costed in
        # chunks rather than per pair. The chunked charge is a charge —
        # the loop must stay clean.
        findings = lint_tree(tmp_path, {
            "src/repro/core/conv.py": """\
                CHUNK = 1024

                def convolve_level(table, level_pairs, counters):
                    layers = {}
                    for left, right in level_pairs:
                        layers.setdefault(left.layer, []).append((left, right))
                    for layer in sorted(layers):
                        pairs = layers[layer]
                        pending = len(pairs)
                        while pending > CHUNK:
                            counters.note_plans_costed(CHUNK)
                            pending -= CHUNK
                        counters.note_plans_costed(pending)
                        for left, right in pairs:
                            table.store_add(left.cost + right.cost)
            """,
        }, "RL004")
        assert findings == []

    def test_uncharged_convolution_loop_fires(self, tmp_path):
        # The same combine loop with the chunked charge removed must
        # fire: bucketing pairs without reporting them breaks the 1 GB
        # feasibility-frontier contract.
        findings = lint_tree(tmp_path, {
            "src/repro/core/conv.py": """\
                def convolve_level(table, jcrs):
                    best = {}
                    pairs = []
                    for left, right in jcrs:
                        pairs.append((left, right))
                    for left, right in pairs:
                        cost = left.cost + right.cost
                        if cost < best.get(left.mask, cost + 1.0):
                            best[left.mask] = cost
                    return best
            """,
        }, "RL004")
        assert findings and all(f.code == "RL004" for f in findings)

    def test_non_core_layer_out_of_scope(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/engine/x.py": _UNCHARGED_LOOP,
        }, "RL004")
        assert findings == []


# ---------------------------------------------------------------- RL005


_FIXTURE_NAMES = """\
    SPAN_WORK = "work.level"
    METRIC_CALLS = "repro_calls_total"
"""


class TestObsNames:
    def test_inline_span_literal_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/obs/names.py": _FIXTURE_NAMES,
            "src/repro/core/x.py": """\
                def run(tracer):
                    with maybe_span(tracer, "dp.custom") as span:
                        return span
            """,
        }, "RL005")
        assert len(findings) == 1
        assert "dp.custom" in findings[0].message

    def test_inline_metric_literal_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/obs/names.py": _FIXTURE_NAMES,
            "src/repro/service/x.py": """\
                def bump(registry):
                    registry.counter("repro_widgets_total", "w").inc()
            """,
        }, "RL005")
        assert len(findings) == 1

    def test_duplicated_registered_literal_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/obs/names.py": _FIXTURE_NAMES,
            "src/repro/robust/x.py": """\
                def is_work(span):
                    return span.name == "work.level"
            """,
        }, "RL005")
        assert len(findings) == 1
        assert "duplicates" in findings[0].message

    def test_constant_usage_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/obs/names.py": _FIXTURE_NAMES,
            "src/repro/core/x.py": """\
                from repro.obs.names import SPAN_WORK

                def run(tracer):
                    with maybe_span(tracer, SPAN_WORK) as span:
                        return span
            """,
        }, "RL005")
        assert findings == []

    def test_names_module_itself_exempt(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/obs/names.py": _FIXTURE_NAMES,
        }, "RL005")
        assert findings == []


# ---------------------------------------------------------------- RL006


_FIXTURE_ERRORS = """\
    class ReproError(Exception):
        pass

    class OptimizationError(ReproError):
        pass
"""


class TestExceptionHygiene:
    def test_bare_except_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/util/x.py": """\
                def swallow(fn):
                    try:
                        fn()
                    except:
                        pass
            """,
        }, "RL006")
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_unchained_raise_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/util/x.py": """\
                def wrap(fn):
                    try:
                        fn()
                    except ValueError:
                        raise RuntimeError("wrapped")
            """,
        }, "RL006")
        assert len(findings) == 1
        assert "chain" in findings[0].message

    def test_chained_and_bare_reraise_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/util/x.py": """\
                def wrap(fn):
                    try:
                        fn()
                    except ValueError as exc:
                        raise RuntimeError("wrapped") from exc
                    except KeyError:
                        raise
            """,
        }, "RL006")
        assert findings == []

    def test_error_subclass_outside_errors_py_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": _FIXTURE_ERRORS,
            "src/repro/service/x.py": """\
                from repro.errors import OptimizationError

                class ServiceTimeout(OptimizationError):
                    pass
            """,
        }, "RL006")
        assert len(findings) == 1
        assert "ServiceTimeout" in findings[0].message

    def test_subclass_inside_errors_py_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": _FIXTURE_ERRORS,
        }, "RL006")
        assert findings == []


# ---------------------------------------------------------------- RL007


def _api_fixture(docs_block: str) -> dict[str, str]:
    return {
        "src/repro/__init__.py": """\
            from repro.api import optimize

            __all__ = ["optimize", "PlanResult"]
        """,
        "src/repro/api.py": """\
            def optimize(query, *, technique='sdp'):
                return query
        """,
        "docs/api.md": docs_block,
    }


_GOOD_BLOCK = """\
    # API

    <!-- repro-lint:public-api
    facade optimize(query, *, technique='sdp')
    symbol optimize
    symbol PlanResult
    -->
"""


class TestPublicApi:
    def test_matching_inventory_clean(self, tmp_path):
        findings = lint_tree(tmp_path, _api_fixture(_GOOD_BLOCK), "RL007")
        assert findings == []

    def test_missing_inventory_block_fires(self, tmp_path):
        findings = lint_tree(
            tmp_path, _api_fixture("# API\n\nno inventory here\n"), "RL007"
        )
        assert len(findings) == 1
        assert "inventory" in findings[0].message

    def test_undocumented_export_fires(self, tmp_path):
        block = _GOOD_BLOCK.replace("symbol PlanResult\n", "")
        findings = lint_tree(tmp_path, _api_fixture(block), "RL007")
        assert len(findings) == 1
        assert "PlanResult" in findings[0].message

    def test_stale_doc_symbol_fires(self, tmp_path):
        block = _GOOD_BLOCK.replace(
            "symbol PlanResult", "symbol PlanResult\n    symbol Removed"
        )
        findings = lint_tree(tmp_path, _api_fixture(block), "RL007")
        assert len(findings) == 1
        assert "Removed" in findings[0].message

    def test_facade_signature_drift_fires(self, tmp_path):
        block = _GOOD_BLOCK.replace("technique='sdp'", "technique='dp'")
        findings = lint_tree(tmp_path, _api_fixture(block), "RL007")
        assert len(findings) == 1
        assert "drift" in findings[0].message

    def test_partial_fixture_tree_silent(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": "x = 1\n",
        }, "RL007")
        assert findings == []


# ---------------------------------------------------------------- RL008


class TestServiceOps:
    def test_unbounded_queue_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                import queue

                work = queue.Queue()
            """,
        }, "RL008")
        assert len(findings) == 1
        assert "maxsize" in findings[0].message

    def test_bounded_queue_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                import queue

                work = queue.Queue(maxsize=32)
                also = queue.LifoQueue(8)
            """,
        }, "RL008")
        assert findings == []

    def test_simplequeue_always_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                from queue import SimpleQueue

                work = SimpleQueue()
            """,
        }, "RL008")
        assert len(findings) == 1
        assert "cannot be bounded" in findings[0].message

    def test_blocking_queue_get_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                def loop(self):
                    return self._queue.get()
            """,
        }, "RL008")
        assert len(findings) == 1
        assert ".get()" in findings[0].message

    def test_nonblocking_queue_ops_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                def loop(self, item):
                    self._queue.put(item, block=False)
                    return self._queue.get(timeout=0.05)
            """,
        }, "RL008")
        assert findings == []

    def test_wait_without_timeout_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                def follow(event):
                    event.wait()
            """,
        }, "RL008")
        assert len(findings) == 1
        assert "timeout" in findings[0].message

    def test_wait_with_timeout_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                def follow(event):
                    event.wait(timeout=30.0)
                    event.wait(1.0)
            """,
        }, "RL008")
        assert findings == []

    def test_worker_join_without_timeout_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                def close(self):
                    for worker in self._workers:
                        worker.join()
            """,
        }, "RL008")
        assert len(findings) == 1
        assert "shutdown" in findings[0].message

    def test_nonthread_join_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                def render(parts):
                    return ", ".join(parts)
            """,
        }, "RL008")
        assert findings == []

    def test_other_layers_out_of_scope(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/x.py": """\
                import queue

                work = queue.Queue()

                def follow(event):
                    event.wait()
            """,
        }, "RL008")
        assert findings == []

    def test_waiver_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": """\
                def follow(event):
                    # lint: waive[RL008] event is set in a finally block
                    event.wait()
            """,
        }, "RL008")
        assert findings == []

    def test_core_parallel_in_scope(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/parallel.py": """\
                def collect(self):
                    return self.outbox_queue.get()
            """,
        }, "RL008")
        assert len(findings) == 1
        assert ".get()" in findings[0].message

    def test_core_parallel_process_join_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/parallel.py": """\
                def shutdown(self):
                    for worker in self.workers:
                        worker.process.join()
            """,
        }, "RL008")
        assert len(findings) == 1
        assert "shutdown" in findings[0].message

    def test_core_parallel_bounded_ops_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/parallel.py": """\
                def collect(self):
                    self.inbox_queue.put(("level",), timeout=60.0)
                    return self.outbox_queue.get(timeout=0.5)

                def shutdown(self):
                    for worker in self.workers:
                        worker.process.join(timeout=5.0)
            """,
        }, "RL008")
        assert findings == []

    def test_other_core_modules_still_out_of_scope(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/dp.py": """\
                def collect(self):
                    return self.outbox_queue.get()
            """,
        }, "RL008")
        assert findings == []


# ---------------------------------------------------------------- RL009


class TestLockOrder:
    def test_opposite_nesting_orders_fire_cycle(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/locks.py": """\
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def one():
                    with A:
                        with B:
                            pass

                def two():
                    with B:
                        with A:
                            pass
            """,
        }, "RL009")
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message

    def test_consistent_order_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/locks.py": """\
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def one():
                    with A:
                        with B:
                            pass

                def two():
                    with A:
                        with B:
                            pass
            """,
        }, "RL009")
        assert findings == []

    def test_interprocedural_cycle_through_methods(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/pair.py": """\
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._svc = Service(self)

                    def evict(self):
                        with self._lock:
                            self._svc.note_eviction()

                class Service:
                    def __init__(self, cache):
                        self._lock = threading.Lock()
                        self._cache = Cache()

                    def note_eviction(self):
                        with self._lock:
                            pass

                    def refresh(self):
                        with self._lock:
                            self._cache.invalidate()
            """,
            "src/repro/service/more.py": """\
                import threading

                class Extra:
                    pass
            """,
        }, "RL009")
        # Cache._lock -> Service._lock (evict) and Service._lock ->
        # Cache._lock would need Cache.invalidate to acquire; it does
        # not exist, so only the one-directional edges — no cycle.
        assert findings == []

    def test_transitive_cycle_via_call_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/pair.py": """\
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._svc = Service(self)

                    def evict(self):
                        with self._lock:
                            self._svc.note_eviction()

                    def invalidate(self):
                        with self._lock:
                            pass

                class Service:
                    def __init__(self, cache):
                        self._lock = threading.Lock()
                        self._cache = Cache()

                    def note_eviction(self):
                        with self._lock:
                            pass

                    def refresh(self):
                        with self._lock:
                            self._cache.invalidate()
            """,
        }, "RL009")
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message
        assert "Cache._lock" in findings[0].message
        assert "Service._lock" in findings[0].message

    def test_plain_lock_self_reacquire_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/self_deadlock.py": """\
                import threading

                class Registry:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def outer(self):
                        with self._lock:
                            self.inner()

                    def inner(self):
                        with self._lock:
                            pass
            """,
        }, "RL009")
        assert len(findings) == 1
        assert "self-deadlock" in findings[0].message

    def test_rlock_reentrancy_is_sanctioned(self, tmp_path):
        # The epoch-swap pattern: optimize() holds the RLock and calls
        # install_statistics(), which re-acquires it.
        findings = lint_tree(tmp_path, {
            "src/repro/service/epoch.py": """\
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.RLock()

                    def optimize(self):
                        with self._lock:
                            self.install_statistics()

                    def install_statistics(self):
                        with self._lock:
                            pass
            """,
        }, "RL009")
        assert findings == []

    def test_acquire_release_calls_count_as_scopes(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/manual.py": """\
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def one():
                    A.acquire()
                    with B:
                        pass
                    A.release()

                def two():
                    with B:
                        A.acquire()
                        A.release()
            """,
        }, "RL009")
        assert len(findings) == 1
        assert "lock-order cycle" in findings[0].message

    def test_out_of_scope_layers_ignored(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/core/dp.py": """\
                import threading

                A = threading.Lock()
                B = threading.Lock()

                def one():
                    with A:
                        with B:
                            pass

                def two():
                    with B:
                        with A:
                            pass
            """,
        }, "RL009")
        assert findings == []


# ---------------------------------------------------------------- RL010


class TestResourceLifecycle:
    def test_early_return_leaks_segment(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                from multiprocessing import shared_memory

                def grab(name, fast):
                    seg = shared_memory.SharedMemory(
                        name=name, create=True, size=8)
                    if fast:
                        return None
                    seg.close()
                    seg.unlink()
            """,
        }, "RL010")
        assert len(findings) == 1
        assert "close, unlink" in findings[0].message

    def test_close_without_unlink_on_owner_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                from multiprocessing import shared_memory

                def grab(name):
                    seg = shared_memory.SharedMemory(
                        name=name, create=True, size=8)
                    seg.close()
            """,
        }, "RL010")
        assert len(findings) == 1
        assert "unlink" in findings[0].message

    def test_exception_path_leak_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                from multiprocessing import shared_memory

                def grab(name, size):
                    seg = shared_memory.SharedMemory(
                        name=name, create=True, size=8)
                    if size < 0:
                        raise ValueError(str(size))
                    seg.close()
                    seg.unlink()
            """,
        }, "RL010")
        assert len(findings) == 1

    def test_try_finally_cleanup_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                from multiprocessing import shared_memory

                def grab(name, fill):
                    seg = shared_memory.SharedMemory(
                        name=name, create=True, size=8)
                    try:
                        fill(seg)
                    finally:
                        seg.close()
                        seg.unlink()
            """,
        }, "RL010")
        assert findings == []

    def test_escape_to_attribute_transfers_ownership(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                from multiprocessing import shared_memory

                class Store:
                    def _grow(self, name):
                        segment = shared_memory.SharedMemory(
                            name=name, create=True, size=8)
                        self._segments.append(segment)
            """,
        }, "RL010")
        assert findings == []

    def test_attach_handle_needs_close_only(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                from multiprocessing import shared_memory

                def peek(name):
                    seg = shared_memory.SharedMemory(name=name)
                    value = bytes(seg.buf[:1])
                    seg.close()
                    return value
            """,
        }, "RL010")
        assert findings == []

    def test_view_alive_when_buffer_closes_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                def snapshot(seg):
                    view = memoryview(seg.buf)
                    seg.close()
                    view.release()
            """,
        }, "RL010")
        assert len(findings) == 1
        assert "release() first" in findings[0].message

    def test_view_released_before_close_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                def snapshot(seg):
                    view = memoryview(seg.buf)
                    view.release()
                    seg.close()
            """,
        }, "RL010")
        assert findings == []

    def test_pool_without_shutdown_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/runner.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def run(tasks):
                    pool = ProcessPoolExecutor(max_workers=2)
                    for task in tasks:
                        pool.submit(task)
            """,
        }, "RL010")
        assert len(findings) == 1
        assert "shutdown" in findings[0].message

    def test_with_statement_cleanup_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/runner.py": """\
                from concurrent.futures import ProcessPoolExecutor

                def run(task):
                    with ProcessPoolExecutor(max_workers=2) as pool:
                        return pool.submit(task).result(timeout=30.0)
            """,
        }, "RL010")
        assert findings == []

    def test_global_publication_is_an_escape(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/runner.py": """\
                from concurrent.futures import ProcessPoolExecutor

                _POOL = None

                def get_pool():
                    global _POOL
                    if _POOL is None:
                        _POOL = ProcessPoolExecutor(max_workers=2)
                    return _POOL
            """,
        }, "RL010")
        assert findings == []

    def test_rebind_while_obligated_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/plans/store.py": """\
                from multiprocessing import shared_memory

                def churn(name):
                    seg = shared_memory.SharedMemory(
                        name=name, create=True, size=8)
                    seg = shared_memory.SharedMemory(
                        name=name + "b", create=True, size=8)
                    seg.close()
                    seg.unlink()
            """,
        }, "RL010")
        assert len(findings) == 1


# ---------------------------------------------------------------- RL011


class TestSharedState:
    DOOR = """\
        import threading

        class Door:
            def __init__(self):
                self._lock = threading.Lock()
                self._counts = {{}}
                self._stop = threading.Event()

            def start(self):
                worker = threading.Thread(target=self._run, daemon=True)
                worker.start()

            def _run(self):
                while not self._stop.is_set():
                    {worker_write}

            def stop(self):
                self._stop.set()

            def stats(self):
                {public_read}
    """

    def test_unlocked_worker_write_and_public_read_fire(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": self.DOOR.format(
                worker_write='self._counts["x"] = 1',
                public_read="return dict(self._counts)",
            ),
        }, "RL011")
        assert len(findings) == 2
        messages = " | ".join(f.message for f in findings)
        assert "worker-side method _run" in messages
        assert "public method stats" in messages

    def test_locked_accesses_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": self.DOOR.format(
                worker_write=(
                    "with self._lock:\n"
                    + " " * 24 + "self._counts['x'] = 1"
                ),
                public_read=(
                    "with self._lock:\n"
                    + " " * 20 + "return dict(self._counts)"
                ),
            ),
        }, "RL011")
        assert findings == []

    def test_event_attribute_is_exempt(self, tmp_path):
        # self._stop is a threading.Event — self-synchronizing, so the
        # unlocked set()/is_set() calls above must not fire on it.
        findings = lint_tree(tmp_path, {
            "src/repro/service/door.py": self.DOOR.format(
                worker_write="pass",
                public_read="return None",
            ),
        }, "RL011")
        assert findings == []

    def test_non_worker_class_ignored(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/service/plain.py": """\
                import threading

                class Plain:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._counts = {}

                    def bump(self):
                        self._counts["x"] = 1
            """,
        }, "RL011")
        assert findings == []


# ---------------------------------------------------------------- RL012


class TestCrossProcessErrors:
    def test_computed_super_message_without_reduce_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": """\
                class ReproError(Exception):
                    pass

                class BudgetBlown(ReproError):
                    def __init__(self, limit, used):
                        super().__init__(f"{used} > {limit}")
                        self.limit = limit
                        self.used = used
            """,
        }, "RL012")
        assert len(findings) == 1
        assert "__reduce__" in findings[0].message

    def test_reduce_makes_computed_message_safe(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": """\
                class ReproError(Exception):
                    pass

                class BudgetBlown(ReproError):
                    def __init__(self, limit, used):
                        super().__init__(f"{used} > {limit}")
                        self.limit = limit
                        self.used = used

                    def __reduce__(self):
                        return (type(self), (self.limit, self.used))
            """,
        }, "RL012")
        assert findings == []

    def test_exact_positional_forwarding_is_safe(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": """\
                class ReproError(Exception):
                    pass

                class Cancelled(ReproError):
                    def __init__(self, reason):
                        super().__init__(reason)
                        self.reason = reason
            """,
        }, "RL012")
        assert findings == []

    def test_adhoc_exception_escaping_worker_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": """\
                class ReproError(Exception):
                    pass
            """,
            "src/repro/core/parallel.py": """\
                from multiprocessing import Process

                class Boom(Exception):
                    pass

                def _worker(inbox):
                    raise Boom("bad cell")

                def start(inbox):
                    proc = Process(target=_worker, args=(inbox,))
                    proc.start()
                    return proc
            """,
        }, "RL012")
        assert len(findings) == 1
        assert "Boom" in findings[0].message
        assert "_worker" in findings[0].message

    def test_caught_in_worker_does_not_escape(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": """\
                class ReproError(Exception):
                    pass
            """,
            "src/repro/core/parallel.py": """\
                from multiprocessing import Process

                class Boom(Exception):
                    pass

                def _worker(inbox):
                    try:
                        raise Boom("bad cell")
                    except Boom:
                        inbox.put(("error", "bad cell"), timeout=5.0)

                def start(inbox):
                    proc = Process(target=_worker, args=(inbox,))
                    proc.start()
                    return proc
            """,
        }, "RL012")
        assert findings == []

    def test_taxonomy_exception_may_escape_worker(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": """\
                class ReproError(Exception):
                    pass

                class WorkerFault(ReproError):
                    def __init__(self, index):
                        super().__init__(index)
                        self.index = index
            """,
            "src/repro/core/parallel.py": """\
                from multiprocessing import Process

                from repro.errors import WorkerFault

                def _worker(index):
                    raise WorkerFault(index)

                def start(index):
                    proc = Process(target=_worker, args=(index,))
                    proc.start()
                    return proc
            """,
        }, "RL012")
        assert findings == []

    def test_escape_through_helper_call_fires(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "src/repro/errors.py": """\
                class ReproError(Exception):
                    pass
            """,
            "src/repro/core/parallel.py": """\
                from multiprocessing import Process

                class Boom(Exception):
                    pass

                def _cost_cell(cell):
                    if cell is None:
                        raise Boom("empty")
                    return cell

                def _worker(inbox):
                    _cost_cell(inbox.get(timeout=5.0))

                def start(inbox):
                    proc = Process(target=_worker, args=(inbox,))
                    proc.start()
                    return proc
            """,
        }, "RL012")
        assert len(findings) == 1
        assert "Boom" in findings[0].message


# ------------------------------------------------- negative sweep (RL009-12)


class TestConcurrencyNegativeSweep:
    """Property-style false-positive guard for the dataflow checkers.

    Generates structurally varied *correct* modules — consistently
    ordered locks, resources cleaned through every supported pattern,
    locked shared state, taxonomy-safe worker errors — and asserts all
    four checkers stay silent on every permutation.
    """

    CLEANUP_PATTERNS = [
        # try/finally
        """\
            def use_{i}(name, fill):
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=8)
                try:
                    fill(seg)
                finally:
                    seg.close()
                    seg.unlink()
        """,
        # straight-line cleanup
        """\
            def use_{i}(name):
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=8)
                seg.close()
                seg.unlink()
        """,
        # ownership handoff via return
        """\
            def use_{i}(name):
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=8)
                return seg
        """,
        # ownership handoff via call argument
        """\
            def use_{i}(name, registry):
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=8)
                registry.adopt(seg)
        """,
        # view released before close, then full cleanup
        """\
            def use_{i}(name):
                seg = shared_memory.SharedMemory(
                    name=name, create=True, size=8)
                view = memoryview(seg.buf)
                view.release()
                seg.close()
                seg.unlink()
        """,
    ]

    @pytest.mark.parametrize("ordering", [
        ("alpha", "beta", "gamma"),
        ("gamma", "alpha", "beta"),
        ("beta", "gamma", "alpha"),
    ])
    def test_consistent_lock_orderings_stay_clean(self, tmp_path, ordering):
        # Every function nests the same global order (possibly skipping
        # locks), which can never produce a cycle.
        first, second, third = ordering
        decls = "\n".join(
            f"{name.upper()} = threading.Lock()" for name in ordering
        )
        chains = []
        order = sorted(ordering)
        for i, chain in enumerate((order, order[:2], order[1:], order[::2])):
            body = "pass"
            for name in reversed(chain):
                body = f"with {name.upper()}:\n" + textwrap.indent(
                    body, "    ")
            chains.append(
                f"def chain_{i}():\n" + textwrap.indent(body, "    "))
        source = "import threading\n\n" + decls + "\n\n" + "\n\n".join(chains)
        findings = lint_tree(
            tmp_path, {"src/repro/service/ordered.py": source}, "RL009")
        assert findings == [], [f.render() for f in findings]

    @pytest.mark.parametrize("index", range(len(CLEANUP_PATTERNS)))
    def test_correctly_released_resources_stay_clean(self, tmp_path, index):
        pattern = textwrap.dedent(self.CLEANUP_PATTERNS[index]).format(i=index)
        source = "from multiprocessing import shared_memory\n\n" + pattern
        findings = lint_tree(
            tmp_path, {"src/repro/plans/store.py": source}, "RL010")
        assert findings == [], [f.render() for f in findings]

    def test_all_checkers_silent_on_correct_concurrent_module(self, tmp_path):
        files = {
            "src/repro/errors.py": """\
                class ReproError(Exception):
                    pass

                class WorkerFault(ReproError):
                    def __init__(self, index):
                        super().__init__(index)
                        self.index = index
            """,
            "src/repro/service/correct.py": """\
                import threading

                REGISTRY_LOCK = threading.Lock()

                class Counter:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._counts = {}
                        self._stop = threading.Event()

                    def start(self):
                        worker = threading.Thread(
                            target=self._drain, daemon=True)
                        worker.start()

                    def _drain(self):
                        while not self._stop.is_set():
                            with self._lock:
                                self._counts["tick"] = 1

                    def stats(self):
                        with self._lock:
                            return dict(self._counts)

                    def stop(self):
                        self._stop.set()
            """,
            "src/repro/core/parallel.py": """\
                from multiprocessing import Process, shared_memory

                from repro.errors import WorkerFault

                def _worker(index, inbox):
                    cell = inbox.get(timeout=5.0)
                    if cell is None:
                        raise WorkerFault(index)

                def start(index, inbox):
                    flag = shared_memory.SharedMemory(
                        name=f"flag-{index}", create=True, size=1)
                    try:
                        proc = Process(target=_worker, args=(index, inbox))
                        proc.start()
                        return proc
                    finally:
                        flag.close()
                        flag.unlink()
            """,
        }
        src = make_tree(tmp_path, files)
        new = [c for c in all_checkers()
               if c.code in ("RL009", "RL010", "RL011", "RL012")]
        findings = run_checkers(load_project([src]), new)
        assert findings == [], [f.render() for f in findings]
