"""Tests for repro.bench.workloads and repro.bench.quality."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.quality import PLAN_CLASSES, QualityStats, classify_ratio
from repro.bench.workloads import WorkloadSpec, generate_queries, make_query
from repro.errors import BenchmarkError


class TestWorkloadSpec:
    def test_label(self):
        spec = WorkloadSpec("star", 15)
        assert spec.label == "star-15"
        assert WorkloadSpec("star", 15, ordered=True).label == "star-15-ordered"

    def test_unknown_topology(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec("torus", 5)

    def test_minimum_sizes(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec("star-chain", 6)
        with pytest.raises(BenchmarkError):
            WorkloadSpec("cycle", 2)


class TestMakeQuery:
    def test_deterministic(self, schema):
        spec = WorkloadSpec("star-chain", 15, seed=3)
        a = make_query(spec, schema, 4)
        b = make_query(spec, schema, 4)
        assert a.graph.relation_names == b.graph.relation_names

    def test_instances_differ(self, schema):
        spec = WorkloadSpec("star-chain", 15, seed=3)
        a = make_query(spec, schema, 0)
        b = make_query(spec, schema, 1)
        assert a.graph.relation_names != b.graph.relation_names

    def test_seed_changes_instances(self, schema):
        a = make_query(WorkloadSpec("star", 10, seed=1, vary_hub=True), schema, 0)
        b = make_query(WorkloadSpec("star", 10, seed=2, vary_hub=True), schema, 0)
        assert a.graph.relation_names != b.graph.relation_names

    def test_star_hub_is_largest_by_default(self, schema):
        query = make_query(WorkloadSpec("star", 10), schema, 0)
        hub_name = query.graph.relation_names[query.graph.hubs()[0]]
        assert hub_name == schema.largest_relation().name

    def test_vary_hub(self, schema):
        hubs = set()
        for i in range(8):
            query = make_query(
                WorkloadSpec("star", 10, vary_hub=True, seed=1), schema, i
            )
            hubs.add(query.graph.relation_names[query.graph.hubs()[0]])
        assert len(hubs) > 1

    def test_star_chain_shape(self, schema):
        query = make_query(WorkloadSpec("star-chain", 15), schema, 0)
        graph = query.graph
        assert query.relation_count == 15
        assert len(graph.hubs()) == 1
        hub_degree = graph.degree(graph.hubs()[0])
        assert hub_degree == 10  # N - 5 spokes

    def test_ordered_variant(self, schema):
        query = make_query(WorkloadSpec("star", 10, ordered=True), schema, 0)
        assert query.order_by is not None
        rel, col = query.order_by
        index = query.graph.index_of(rel)
        assert col in query.graph.join_columns_of(index)

    def test_shared_hub_column(self, schema):
        query = make_query(
            WorkloadSpec("star", 8, shared_hub_column=True), schema, 0
        )
        assert query.graph.shared_column_eclasses() != []

    def test_too_many_relations_rejected(self, schema):
        with pytest.raises(BenchmarkError):
            make_query(WorkloadSpec("chain", 26), schema, 0)

    def test_generate_queries_count(self, schema):
        spec = WorkloadSpec("chain", 5)
        assert len(list(generate_queries(spec, schema, 3))) == 3
        with pytest.raises(BenchmarkError):
            list(generate_queries(spec, schema, 0))

    @pytest.mark.parametrize(
        "topology,size", [("chain", 6), ("cycle", 6), ("clique", 5), ("star", 8)]
    )
    def test_all_topologies_materialize(self, schema, topology, size):
        query = make_query(WorkloadSpec(topology, size, seed=2), schema, 0)
        assert query.relation_count == size
        assert query.graph.is_connected(query.graph.all_mask)


class TestQuality:
    def test_classification_boundaries(self):
        assert classify_ratio(1.0) == "I"
        assert classify_ratio(1.01) == "I"
        assert classify_ratio(1.02) == "G"
        assert classify_ratio(2.0) == "G"
        assert classify_ratio(2.01) == "A"
        assert classify_ratio(10.0) == "A"
        assert classify_ratio(10.5) == "B"

    def test_negative_rejected(self):
        with pytest.raises(BenchmarkError):
            classify_ratio(-0.5)

    def test_stats_from_ratios(self):
        stats = QualityStats.from_ratios([1.0, 1.5, 3.0, 20.0])
        assert stats.counts == {"I": 1, "G": 1, "A": 1, "B": 1}
        assert stats.worst == 20.0
        assert stats.instances == 4
        assert stats.percent("I") == 25.0

    def test_rho_of_identical_plans_is_one(self):
        stats = QualityStats.from_ratios([1.0] * 10)
        assert stats.rho == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError):
            QualityStats.from_ratios([])

    def test_unknown_class_rejected(self):
        stats = QualityStats.from_ratios([1.0])
        with pytest.raises(BenchmarkError):
            stats.percent("Z")

    def test_row_format(self):
        stats = QualityStats.from_ratios([1.0, 4.0])
        row = stats.row()
        assert len(row) == len(PLAN_CLASSES) + 2

    @given(st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1))
    def test_rho_between_min_and_max(self, ratios):
        stats = QualityStats.from_ratios(ratios)
        assert min(ratios) - 1e-9 <= stats.rho <= max(ratios) + 1e-9
