"""Smoke test for the hot-path benchmark harness.

Marked ``perf``: it runs the real harness end-to-end (one repeat, reduced
workers) and checks the report it writes, guarding the perf-tracking
entry point itself against bit-rot. Deselect with ``-m "not perf"``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HARNESS = os.path.join(REPO_ROOT, "benchmarks", "bench_hot_paths.py")


@pytest.mark.perf
def test_bench_harness_end_to_end(tmp_path):
    output = tmp_path / "BENCH_optimize.json"
    started = time.perf_counter()
    completed = subprocess.run(
        [sys.executable, HARNESS, "--repeats", "1", "--output", str(output)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    elapsed = time.perf_counter() - started
    assert completed.returncode == 0, completed.stderr
    assert elapsed < 60.0, f"harness smoke run took {elapsed:.1f}s"

    report = json.loads(output.read_text())
    benches = report["benchmarks"]
    assert set(benches) == {
        "dp_star_12",
        "sdp_star_25",
        "grid_workers",
        "plan_cache",
    }
    # Search counters are deterministic: they only move when the search
    # itself changes, so the smoke run pins them.
    assert benches["dp_star_12"]["plans_costed"] == 78871
    assert benches["dp_star_12"]["median_seconds"] > 0
    assert benches["sdp_star_25"]["plans_costed"] == 157472
    assert benches["grid_workers"]["identical_outcomes"] is True
    assert benches["plan_cache"]["speedup"] >= 10.0


def test_committed_report_matches_current_counters():
    """The committed BENCH_optimize.json must track the current search."""
    path = os.path.join(REPO_ROOT, "BENCH_optimize.json")
    report = json.loads(open(path, encoding="utf-8").read())
    benches = report["benchmarks"]
    assert benches["dp_star_12"]["plans_costed"] == 78871
    assert benches["sdp_star_25"]["plans_costed"] == 157472
    assert benches["grid_workers"]["identical_outcomes"] is True
