"""Hot-path benchmark harness tests, including the perf regression guard.

The ``perf``-marked tests run the real harness — minutes, not
milliseconds — so they are **opt-in**: the default ``pytest`` run
deselects them (``addopts`` carries ``-m "not perf"``); run them with
``pytest -m perf``. The unmarked test only reads the committed report.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.bench.hotpaths import compare_reports, run_harness

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HARNESS = os.path.join(REPO_ROOT, "benchmarks", "bench_hot_paths.py")
COMMITTED = os.path.join(REPO_ROOT, "BENCH_optimize.json")


def _committed_report() -> dict:
    with open(COMMITTED, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.perf
def test_bench_harness_end_to_end(tmp_path):
    output = tmp_path / "BENCH_optimize.json"
    started = time.perf_counter()
    completed = subprocess.run(
        [sys.executable, HARNESS, "--repeats", "1", "--output", str(output)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    elapsed = time.perf_counter() - started
    assert completed.returncode == 0, completed.stderr
    # The big single-query parallel arms dominate; generous but bounded.
    assert elapsed < 300.0, f"harness smoke run took {elapsed:.1f}s"

    report = json.loads(output.read_text())
    benches = report["benchmarks"]
    assert set(benches) == {
        "dp_star_12",
        "sdp_star_25",
        "grid_workers",
        "dp_star_15_parallel",
        "sdp_star_50_parallel",
        "plan_cache",
        "sql_workload",
        "frontdoor_load",
    }
    # Search counters are deterministic: they only move when the search
    # itself changes, so the smoke run pins them.
    assert benches["dp_star_12"]["plans_costed"] == 78871
    assert benches["dp_star_12"]["median_seconds"] > 0
    assert benches["sdp_star_25"]["plans_costed"] == 157472
    assert benches["grid_workers"]["identical_outcomes"] is True
    assert benches["grid_workers"]["mode"] in ("serial", "pool")
    assert benches["plan_cache"]["speedup"] >= 10.0


@pytest.mark.perf
def test_no_regression_against_committed_report():
    """The regression guard: current run vs. the committed baseline.

    Same comparison ``sdp-bench --check BENCH_optimize.json`` runs —
    plans_costed and winning cost must match the committed report exactly
    (a drift means the *search* changed, not just its speed), and scenario
    medians may not regress past the bounded factor.
    """
    baseline = _committed_report()
    current = run_harness(repeats=3)
    problems = compare_reports(baseline, current)
    assert not problems, "\n".join(problems)


class TestCompareReports:
    """Unit-level checks of the guard itself (fast, always selected)."""

    def _report(self, **overrides):
        base = {
            "benchmarks": {
                "dp_star_12": {
                    "median_seconds": 0.1,
                    "plans_costed": 100,
                    "cost": 1.5,
                },
                "sdp_star_25": {
                    "median_seconds": 0.5,
                    "plans_costed": 200,
                    "cost": 2.5,
                },
                "grid_workers": {
                    "identical_outcomes": True,
                    "plans_costed": {"DP": 10},
                    "mode": "serial",
                    "speedup": 1.0,
                },
                "plan_cache": {"speedup": 50.0},
            }
        }
        for path, value in overrides.items():
            bench, key = path.split(".")
            base["benchmarks"][bench][key] = value
        return base

    def test_identical_reports_pass(self):
        assert compare_reports(self._report(), self._report()) == []

    def test_counter_drift_is_flagged(self):
        problems = compare_reports(
            self._report(), self._report(**{"dp_star_12.plans_costed": 101})
        )
        assert any("plans_costed drifted" in p for p in problems)

    def test_cost_drift_is_flagged(self):
        problems = compare_reports(
            self._report(), self._report(**{"sdp_star_25.cost": 2.500001})
        )
        assert any("cost drifted" in p for p in problems)

    def test_time_regression_is_flagged_beyond_factor(self):
        slow = self._report(**{"dp_star_12.median_seconds": 0.26})
        assert any(
            "exceeds" in p for p in compare_reports(self._report(), slow)
        )
        ok = self._report(**{"dp_star_12.median_seconds": 0.24})
        assert compare_reports(self._report(), ok) == []

    def test_outcome_divergence_is_flagged(self):
        problems = compare_reports(
            self._report(),
            self._report(**{"grid_workers.identical_outcomes": False}),
        )
        assert any("diverged" in p for p in problems)

    def test_slow_pool_is_flagged_but_serial_fallback_is_not(self):
        slow_pool = self._report(
            **{"grid_workers.mode": "pool", "grid_workers.speedup": 0.8}
        )
        assert any(
            "pool mode slower" in p
            for p in compare_reports(self._report(), slow_pool)
        )
        # Serial fallback runs the same path twice: ~1x by construction,
        # so 0.8 is timer noise, not a regression.
        noisy_serial = self._report(**{"grid_workers.speedup": 0.8})
        assert compare_reports(self._report(), noisy_serial) == []

    def test_plan_cache_speedup_floor(self):
        problems = compare_reports(
            self._report(), self._report(**{"plan_cache.speedup": 5.0})
        )
        assert any("plan_cache" in p for p in problems)

    def _sql_workload_arm(self, **overrides):
        arm = {
            "templates": 1,
            "techniques": ["DP", "SDP"],
            "sql_equals_query_path": True,
            "queries": {
                "q1": {
                    "DP": {"plans_costed": 10, "cost": 1.0, "ratio_to_dp": 1.0},
                    "SDP": {"plans_costed": 8, "cost": 1.2, "ratio_to_dp": 1.2},
                }
            },
        }
        for path, value in overrides.items():
            technique, key = path.split(".")
            arm["queries"]["q1"][technique][key] = value
        return arm

    def test_sql_workload_absent_in_baseline_is_fine(self):
        current = self._report()
        current["benchmarks"]["sql_workload"] = self._sql_workload_arm()
        assert compare_reports(self._report(), current) == []

    def test_sql_workload_entry_path_divergence_is_flagged(self):
        current = self._report()
        current["benchmarks"]["sql_workload"] = self._sql_workload_arm()
        current["benchmarks"]["sql_workload"]["sql_equals_query_path"] = False
        problems = compare_reports(self._report(), current)
        assert any("SQL text diverged" in p for p in problems)

    def test_sql_workload_heuristic_beating_dp_is_flagged(self):
        current = self._report()
        current["benchmarks"]["sql_workload"] = self._sql_workload_arm(
            **{"SDP.ratio_to_dp": 0.9}
        )
        problems = compare_reports(self._report(), current)
        assert any("cheaper than exhaustive DP" in p for p in problems)

    def test_sql_workload_drift_against_baseline_is_flagged(self):
        baseline = self._report()
        baseline["benchmarks"]["sql_workload"] = self._sql_workload_arm()
        current = self._report()
        current["benchmarks"]["sql_workload"] = self._sql_workload_arm(
            **{"SDP.plans_costed": 9, "DP.cost": 1.1}
        )
        problems = compare_reports(baseline, current)
        assert any("q1/SDP: plans_costed drifted" in p for p in problems)
        assert any("q1/DP: cost drifted" in p for p in problems)


def test_committed_report_matches_current_counters():
    """The committed BENCH_optimize.json must track the current search."""
    benches = _committed_report()["benchmarks"]
    assert benches["dp_star_12"]["plans_costed"] == 78871
    assert benches["sdp_star_25"]["plans_costed"] == 157472
    assert benches["grid_workers"]["identical_outcomes"] is True
    sqlw = benches["sql_workload"]
    assert sqlw["templates"] == 13
    assert sqlw["sql_equals_query_path"] is True
    assert all(
        arm["ratio_to_dp"] >= 1.0
        for arms in sqlw["queries"].values()
        for arm in arms.values()
    )
