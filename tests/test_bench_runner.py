"""Tests for repro.bench.runner and repro.bench.reporting."""

from __future__ import annotations

import pytest

from repro.bench.reporting import INFEASIBLE, overhead_table, quality_table
from repro.bench.runner import run_comparison
from repro.bench.workloads import WorkloadSpec
from repro.core.base import SearchBudget
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def small_comparison(schema, stats):
    spec = WorkloadSpec("star-chain", 8, seed=0)
    return run_comparison(
        spec,
        schema,
        techniques=["DP", "IDP(4)", "SDP", "GOO"],
        instances=3,
        stats=stats,
    )


class TestRunComparison:
    def test_reference_is_dp_when_feasible(self, small_comparison):
        assert small_comparison.reference == "DP"

    def test_dp_ratios_are_one(self, small_comparison):
        dp = small_comparison.outcome("DP")
        assert all(r == pytest.approx(1.0) for r in dp.ratios)

    def test_heuristics_never_below_one(self, small_comparison):
        for name in ("IDP(4)", "SDP", "GOO"):
            outcome = small_comparison.outcome(name)
            assert all(r >= 1.0 - 1e-9 for r in outcome.ratios)

    def test_overheads_recorded(self, small_comparison):
        sdp = small_comparison.outcome("SDP")
        assert sdp.mean_plans_costed > 0
        assert sdp.mean_memory_mb > 0
        assert sdp.mean_seconds >= 0

    def test_quality_aggregation(self, small_comparison):
        quality = small_comparison.outcome("SDP").quality
        assert quality is not None
        assert quality.instances == 3

    def test_unknown_technique_lookup(self, small_comparison):
        with pytest.raises(BenchmarkError):
            small_comparison.outcome("Nonexistent")

    def test_infeasible_technique_marked(self, schema, stats):
        spec = WorkloadSpec("star", 12, seed=0)
        result = run_comparison(
            spec,
            schema,
            techniques=["DP", "SDP"],
            instances=2,
            stats=stats,
            budget=SearchBudget(max_memory_bytes=5_000_000),
        )
        assert result.reference == "SDP"
        dp = result.outcome("DP")
        assert not dp.feasible
        assert dp.skipped
        sdp = result.outcome("SDP")
        assert sdp.feasible
        assert all(r == pytest.approx(1.0) for r in sdp.ratios)

    def test_mean_on_infeasible_raises(self, schema, stats):
        spec = WorkloadSpec("star", 12, seed=0)
        result = run_comparison(
            spec,
            schema,
            techniques=["DP", "SDP"],
            instances=1,
            stats=stats,
            budget=SearchBudget(max_memory_bytes=5_000_000),
        )
        with pytest.raises(BenchmarkError):
            _ = result.outcome("DP").mean_seconds


class TestRobustMode:
    @pytest.fixture(scope="class")
    def robust_comparison(self, schema, stats):
        # Same cell and budget that mark DP infeasible in plain mode.
        spec = WorkloadSpec("star", 12, seed=0)
        return run_comparison(
            spec,
            schema,
            techniques=["DP", "SDP"],
            instances=2,
            stats=stats,
            budget=SearchBudget(max_memory_bytes=5_000_000),
            robust=True,
        )

    def test_no_infeasible_outcomes(self, robust_comparison):
        for name in ("DP", "SDP"):
            outcome = robust_comparison.outcome(name)
            assert outcome.feasible
            assert not outcome.skipped
            assert len(outcome.ratios) == 2

    def test_fallback_events_recorded(self, robust_comparison):
        dp = robust_comparison.outcome("DP")
        assert dp.fallback_events == 2
        assert dp.fallback_winners
        assert all(w != "DP" for w in dp.fallback_winners)

    def test_feasible_rung_has_no_fallbacks(self, robust_comparison):
        sdp = robust_comparison.outcome("SDP")
        assert sdp.fallback_events == 0
        assert sdp.fallback_winners == []

    def test_fallback_table_renders(self, robust_comparison):
        from repro.bench.reporting import fallback_table

        text = fallback_table(
            [robust_comparison], ["DP", "SDP"], "T"
        ).render()
        assert "Fallbacks" in text
        assert "2/2" in text
        assert INFEASIBLE not in text


class TestReporting:
    def test_quality_table_renders(self, small_comparison):
        table = quality_table([small_comparison], ["DP", "SDP"], "T")
        text = table.render()
        assert "star-chain-8" in text
        assert "rho" in text

    def test_overhead_table_renders(self, small_comparison):
        table = overhead_table([small_comparison], ["DP", "SDP"], "T")
        text = table.render()
        assert "Costing" in text
        assert "E+" in text or "E-" in text  # scientific notation plans

    def test_infeasible_rows_render_stars(self, schema, stats):
        spec = WorkloadSpec("star", 12, seed=0)
        result = run_comparison(
            spec,
            schema,
            techniques=["DP", "SDP"],
            instances=1,
            stats=stats,
            budget=SearchBudget(max_memory_bytes=5_000_000),
        )
        text = quality_table([result], ["DP", "SDP"], "T").render()
        assert INFEASIBLE in text
        text = overhead_table([result], ["DP", "SDP"], "T").render()
        assert INFEASIBLE in text


class TestPersistence:
    def test_round_trip(self, small_comparison, tmp_path):
        from repro.bench.persistence import load_comparison, save_comparison

        path = str(tmp_path / "runs" / "cell.json")
        save_comparison(small_comparison, path)
        loaded = load_comparison(path)
        assert loaded.label == small_comparison.label
        assert loaded.reference == small_comparison.reference
        for name, outcome in small_comparison.outcomes.items():
            restored = loaded.outcome(name)
            assert restored.ratios == outcome.ratios
            assert restored.plans_costed == outcome.plans_costed
            assert restored.quality.rho == outcome.quality.rho

    def test_version_check(self, tmp_path):
        import json

        from repro.bench.persistence import load_comparison
        from repro.errors import BenchmarkError

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(BenchmarkError):
            load_comparison(str(path))

    def test_missing_field(self, tmp_path):
        import json

        from repro.bench.persistence import comparison_from_dict
        from repro.errors import BenchmarkError

        with pytest.raises(BenchmarkError):
            comparison_from_dict({"format_version": 1, "outcomes": {}})
