"""Run the library's docstring examples as tests."""

from __future__ import annotations

import doctest

import pytest

import repro.catalog.distributions
import repro.cost.selectivity
import repro.skyline.dominance
import repro.skyline.kdominant
import repro.skyline.naive
import repro.skyline.sfs
import repro.util.bitset
import repro.util.rng
import repro.util.tables
import repro.util.timer

MODULES = [
    repro.util.bitset,
    repro.util.rng,
    repro.util.tables,
    repro.util.timer,
    repro.catalog.distributions,
    repro.cost.selectivity,
    repro.skyline.dominance,
    repro.skyline.naive,
    repro.skyline.sfs,
    repro.skyline.kdominant,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    failures, attempted = doctest.testmod(
        module, verbose=False, optionflags=doctest.NORMALIZE_WHITESPACE
    )
    assert failures == 0
    assert attempted > 0, f"{module.__name__} has no doctest examples"
