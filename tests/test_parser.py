"""Tests for repro.query.parser (SQL -> Query), incl. round-trips."""

from __future__ import annotations

import pytest

from repro.bench.workloads import WorkloadSpec, make_query
from repro.errors import QueryError
from repro.query.parser import parse_sql
from repro.query.sql import render_sql


def _predicate_set(query):
    return {
        (
            query.graph.relation_names[p.left],
            p.left_column,
            query.graph.relation_names[p.right],
            p.right_column,
        )
        for p in query.graph.predicates
        if not p.implied
    }


class TestParseBasics:
    def test_minimal(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2",
        )
        assert query.relation_count == 2
        assert len(query.graph.predicates) == 1

    def test_case_insensitive_keywords(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"select * from {names[0]}, {names[1]} "
            f"where {names[0]}.c1 = {names[1]}.c2;",
        )
        assert query.relation_count == 2

    def test_projection_list(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT {names[0]}.c1, {names[1]}.c3 "
            f"FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2",
        )
        assert query.relation_count == 2

    def test_order_by(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 "
            f"ORDER BY {names[1]}.c2",
        )
        assert query.order_by == (names[1], "c2")
        assert query.has_join_column_order

    def test_multi_way_with_ands(self, small_schema):
        names = list(small_schema.relation_names[:4])
        sql = (
            f"SELECT * FROM {', '.join(names)} WHERE "
            f"{names[0]}.c1 = {names[1]}.c2 AND "
            f"{names[1]}.c3 = {names[2]}.c4 AND "
            f"{names[2]}.c5 = {names[3]}.c6"
        )
        query = parse_sql(small_schema, sql)
        assert query.relation_count == 4

    def test_label_defaults_to_text(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2",
        )
        assert query.label.startswith("SELECT")


class TestParseErrors:
    def test_unknown_relation(self, small_schema):
        with pytest.raises(QueryError, match="unknown relation"):
            parse_sql(small_schema, "SELECT * FROM Nope, R1 WHERE Nope.a = R1.c1")

    def test_unknown_column(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.zz = {names[1]}.c2",
            )

    def test_relation_not_in_from(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="not listed in FROM"):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 = {names[2]}.c2",
            )

    def test_duplicate_from(self, small_schema):
        name = small_schema.relation_names[0]
        with pytest.raises(QueryError, match="duplicate relation"):
            parse_sql(small_schema, f"SELECT * FROM {name}, {name}")

    def test_disconnected_rejected(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(Exception):
            parse_sql(small_schema, f"SELECT * FROM {names[0]}, {names[1]}")

    def test_garbage_token(self, small_schema):
        with pytest.raises(QueryError, match="unexpected character"):
            parse_sql(small_schema, "SELECT * FROM R1 @ R2")

    def test_truncated(self, small_schema):
        with pytest.raises(QueryError, match="unexpected end"):
            parse_sql(small_schema, "SELECT * FROM")

    def test_trailing_junk(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="trailing"):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 = {names[1]}.c2 LIMIT",
            )

    def test_keyword_as_name_rejected(self, small_schema):
        with pytest.raises(QueryError):
            parse_sql(small_schema, "SELECT * FROM select")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "topology,size",
        [("chain", 5), ("star", 6), ("star-chain", 8), ("cycle", 5)],
    )
    def test_render_then_parse(self, schema, topology, size):
        spec = WorkloadSpec(topology, size, seed=2)
        original = make_query(spec, schema, 0)
        parsed = parse_sql(schema, render_sql(original))
        assert set(parsed.graph.relation_names) == set(
            original.graph.relation_names
        )
        assert _predicate_set(parsed) == _predicate_set(original)

    def test_ordered_round_trip(self, schema):
        spec = WorkloadSpec("star", 6, ordered=True, seed=2)
        original = make_query(spec, schema, 1)
        parsed = parse_sql(schema, render_sql(original))
        assert parsed.order_by == original.order_by

    def test_parsed_query_optimizes(self, schema, stats):
        from repro.core import SDPOptimizer

        spec = WorkloadSpec("star-chain", 9, seed=2)
        original = make_query(spec, schema, 0)
        parsed = parse_sql(schema, render_sql(original))
        result = SDPOptimizer().optimize(parsed, stats)
        assert result.cost > 0
