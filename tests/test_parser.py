"""Tests for repro.query.parser (SQL -> Query), incl. round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import WorkloadSpec, make_query
from repro.errors import QueryError
from repro.query import SELECTION_OPS, Query, Selection
from repro.query.parser import parse_sql
from repro.query.sql import render_sql


def _predicate_set(query):
    return {
        (
            query.graph.relation_names[p.left],
            p.left_column,
            query.graph.relation_names[p.right],
            p.right_column,
        )
        for p in query.graph.predicates
        if not p.implied
    }


class TestParseBasics:
    def test_minimal(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2",
        )
        assert query.relation_count == 2
        assert len(query.graph.predicates) == 1

    def test_case_insensitive_keywords(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"select * from {names[0]}, {names[1]} "
            f"where {names[0]}.c1 = {names[1]}.c2;",
        )
        assert query.relation_count == 2

    def test_projection_list(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT {names[0]}.c1, {names[1]}.c3 "
            f"FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2",
        )
        assert query.relation_count == 2

    def test_order_by(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 "
            f"ORDER BY {names[1]}.c2",
        )
        assert query.order_by == (names[1], "c2")
        assert query.has_join_column_order

    def test_multi_way_with_ands(self, small_schema):
        names = list(small_schema.relation_names[:4])
        sql = (
            f"SELECT * FROM {', '.join(names)} WHERE "
            f"{names[0]}.c1 = {names[1]}.c2 AND "
            f"{names[1]}.c3 = {names[2]}.c4 AND "
            f"{names[2]}.c5 = {names[3]}.c6"
        )
        query = parse_sql(small_schema, sql)
        assert query.relation_count == 4

    def test_label_defaults_to_text(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2",
        )
        assert query.label.startswith("SELECT")


class TestSelections:
    @pytest.mark.parametrize("op", sorted(SELECTION_OPS))
    def test_every_operator_parses(self, small_schema, op):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 "
            f"AND {names[0]}.c3 {op} 42",
        )
        assert query.selections == (Selection(names[0], "c3", op, 42.0),)

    def test_not_equal_spellings_canonicalize(self, small_schema):
        names = small_schema.relation_names
        base = (
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 AND {names[0]}.c3 "
        )
        a = parse_sql(small_schema, base + "<> 7")
        b = parse_sql(small_schema, base + "!= 7")
        assert a.selections == b.selections
        assert a.selections[0].op == "!="

    def test_values_are_floats(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 "
            f"AND {names[0]}.c3 < 12.5 AND {names[1]}.c4 >= 3",
        )
        values = [s.value for s in query.selections]
        assert values == [12.5, 3.0]
        assert all(isinstance(v, float) for v in values)

    def test_selections_of_groups_by_relation(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 "
            f"AND {names[0]}.c3 < 10 AND {names[0]}.c4 > 2",
        )
        assert len(query.selections_of(names[0])) == 2
        assert query.selections_of(names[1]) == ()

    def test_selection_unknown_column_rejected(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="unknown column"):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 = {names[1]}.c2 AND {names[0]}.zz < 5",
            )

    def test_selection_relation_not_in_from_rejected(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="not listed in FROM"):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 = {names[1]}.c2 AND {names[2]}.c3 < 5",
            )

    def test_column_to_column_inequality_rejected(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="equi-joins"):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 < {names[1]}.c2",
            )

    def test_selection_round_trips(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 "
            f"AND {names[0]}.c3 <= 99.5 AND {names[1]}.c4 != 3",
        )
        parsed = parse_sql(small_schema, render_sql(query))
        assert parsed.selections == query.selections


class TestProjectionValidation:
    def test_unknown_projected_column_rejected(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="SELECT references unknown column"):
            parse_sql(
                small_schema,
                f"SELECT {names[0]}.zz FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 = {names[1]}.c2",
            )

    def test_projected_relation_not_in_from_rejected(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="not listed in FROM"):
            parse_sql(
                small_schema,
                f"SELECT {names[2]}.c1 FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 = {names[1]}.c2",
            )

    def test_valid_projection_still_accepted(self, small_schema):
        names = small_schema.relation_names
        query = parse_sql(
            small_schema,
            f"SELECT {names[0]}.c1, {names[1]}.c2 "
            f"FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2",
        )
        assert query.relation_count == 2


class TestParseErrors:
    def test_unknown_relation(self, small_schema):
        with pytest.raises(QueryError, match="unknown relation"):
            parse_sql(small_schema, "SELECT * FROM Nope, R1 WHERE Nope.a = R1.c1")

    def test_unknown_column(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.zz = {names[1]}.c2",
            )

    def test_relation_not_in_from(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="not listed in FROM"):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 = {names[2]}.c2",
            )

    def test_duplicate_from(self, small_schema):
        name = small_schema.relation_names[0]
        with pytest.raises(QueryError, match="duplicate relation"):
            parse_sql(small_schema, f"SELECT * FROM {name}, {name}")

    def test_disconnected_rejected(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(Exception):
            parse_sql(small_schema, f"SELECT * FROM {names[0]}, {names[1]}")

    def test_garbage_token(self, small_schema):
        with pytest.raises(QueryError, match="unexpected character"):
            parse_sql(small_schema, "SELECT * FROM R1 @ R2")

    def test_truncated(self, small_schema):
        with pytest.raises(QueryError, match="unexpected end"):
            parse_sql(small_schema, "SELECT * FROM")

    def test_trailing_junk(self, small_schema):
        names = small_schema.relation_names
        with pytest.raises(QueryError, match="trailing"):
            parse_sql(
                small_schema,
                f"SELECT * FROM {names[0]}, {names[1]} "
                f"WHERE {names[0]}.c1 = {names[1]}.c2 LIMIT",
            )

    def test_keyword_as_name_rejected(self, small_schema):
        with pytest.raises(QueryError):
            parse_sql(small_schema, "SELECT * FROM select")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "topology,size",
        [("chain", 5), ("star", 6), ("star-chain", 8), ("cycle", 5)],
    )
    def test_render_then_parse(self, schema, topology, size):
        spec = WorkloadSpec(topology, size, seed=2)
        original = make_query(spec, schema, 0)
        parsed = parse_sql(schema, render_sql(original))
        assert set(parsed.graph.relation_names) == set(
            original.graph.relation_names
        )
        assert _predicate_set(parsed) == _predicate_set(original)

    def test_ordered_round_trip(self, schema):
        spec = WorkloadSpec("star", 6, ordered=True, seed=2)
        original = make_query(spec, schema, 1)
        parsed = parse_sql(schema, render_sql(original))
        assert parsed.order_by == original.order_by

    def test_parsed_query_optimizes(self, schema, stats):
        from repro.core import SDPOptimizer

        spec = WorkloadSpec("star-chain", 9, seed=2)
        original = make_query(spec, schema, 0)
        parsed = parse_sql(schema, render_sql(original))
        result = SDPOptimizer().optimize(parsed, stats)
        assert result.cost > 0


class TestRoundTripProperty:
    """``parse_sql(schema, render_sql(q))`` is equivalent to ``q``.

    Randomized queries over the paper's topologies, decorated with random
    selections (any relation/column/op, integral and fractional constants)
    and a random ORDER BY (absent, join column, or arbitrary column) —
    the parse must reproduce the join graph, the selections, and the
    ORDER BY exactly.
    """

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_round_trip_equivalent(self, small_schema, data):
        topology = data.draw(
            st.sampled_from(["chain", "star", "clique"]), label="topology"
        )
        size = data.draw(st.integers(3, 6), label="size")
        instance = data.draw(st.integers(0, 2), label="instance")
        base = make_query(
            WorkloadSpec(topology, size, seed=5), small_schema, instance
        )
        names = base.graph.relation_names

        selections = []
        for _ in range(data.draw(st.integers(0, 3), label="n_selections")):
            rel = data.draw(st.sampled_from(list(names)))
            columns = [
                c.name for c in small_schema.relation(rel).columns
            ]
            column = data.draw(st.sampled_from(columns))
            op = data.draw(st.sampled_from(sorted(SELECTION_OPS)))
            # Quarter-integers in [0, 10000]: round-trip exactly through
            # the renderer's decimal format (no exponents, no negatives —
            # the grammar has neither).
            value = data.draw(st.integers(0, 40_000)) / 4
            selections.append(Selection(rel, column, op, value))

        order_by = None
        order_kind = data.draw(
            st.sampled_from(["none", "join", "any"]), label="order_kind"
        )
        if order_kind == "join":
            pred = data.draw(st.sampled_from(list(base.graph.predicates)))
            order_by = (names[pred.left], pred.left_column)
        elif order_kind == "any":
            rel = data.draw(st.sampled_from(list(names)))
            columns = [c.name for c in small_schema.relation(rel).columns]
            order_by = (rel, data.draw(st.sampled_from(columns)))

        original = Query(
            small_schema,
            base.graph,
            selections=tuple(selections),
            order_by=order_by,
        )
        parsed = parse_sql(small_schema, render_sql(original))

        assert set(parsed.graph.relation_names) == set(names)
        assert _predicate_set(parsed) == _predicate_set(original)
        key = lambda s: (s.relation, s.column, s.op, s.value)  # noqa: E731
        assert sorted(parsed.selections, key=key) == sorted(
            original.selections, key=key
        )
        assert parsed.order_by == original.order_by
