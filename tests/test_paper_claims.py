"""Regression tests pinning the paper's headline claims (reduced scale).

These are the load-bearing qualitative results of the paper; if a change to
the optimizers or the cost model breaks one of them, the reproduction has
regressed even if every unit test still passes.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_comparison
from repro.bench.workloads import WorkloadSpec
from repro.core.base import SearchBudget


@pytest.fixture(scope="module")
def star_chain_15(schema, stats):
    """A 6-instance Star-Chain-15 comparison (the Table 1.1 workload)."""
    return run_comparison(
        WorkloadSpec("star-chain", 15, seed=0),
        schema,
        techniques=["DP", "IDP(7)", "SDP", "GOO"],
        instances=6,
        stats=stats,
        budget=SearchBudget(max_seconds=60),
    )


class TestHeadlineClaims:
    def test_dp_is_the_reference(self, star_chain_15):
        assert star_chain_15.reference == "DP"

    def test_sdp_rho_close_to_one(self, star_chain_15):
        """Table 1.1: SDP's overall quality factor is near-ideal."""
        rho = star_chain_15.outcome("SDP").quality.rho
        assert rho < 1.25

    def test_sdp_no_worse_than_idp_on_rho(self, star_chain_15):
        sdp = star_chain_15.outcome("SDP").quality.rho
        idp = star_chain_15.outcome("IDP(7)").quality.rho
        assert sdp <= idp + 0.05

    def test_sdp_mostly_ideal(self, star_chain_15):
        """Table 1.1: SDP returns the (near-)optimal plan most of the time."""
        quality = star_chain_15.outcome("SDP").quality
        assert quality.percent("I") >= 50.0

    def test_sdp_never_bad(self, star_chain_15):
        """The paper's robustness claim: SDP plans are never Bad (>10x)."""
        assert star_chain_15.outcome("SDP").quality.counts["B"] == 0

    def test_heuristics_cost_fraction_of_dp(self, star_chain_15):
        """Table 1.2: the heuristics cost ~10% of DP's search space."""
        dp = star_chain_15.outcome("DP").mean_plans_costed
        for name in ("IDP(7)", "SDP"):
            assert star_chain_15.outcome(name).mean_plans_costed < 0.35 * dp

    def test_sdp_cheaper_than_idp(self, star_chain_15):
        """Table 1.2: SDP's overheads sit below IDP's."""
        sdp = star_chain_15.outcome("SDP")
        idp = star_chain_15.outcome("IDP(7)")
        assert sdp.mean_plans_costed < idp.mean_plans_costed
        assert sdp.mean_memory_mb < idp.mean_memory_mb

    def test_greedy_is_the_quality_floor(self, star_chain_15):
        """GOO trades quality for effort harder than any DP-based method."""
        goo = star_chain_15.outcome("GOO")
        sdp = star_chain_15.outcome("SDP")
        assert goo.mean_plans_costed < sdp.mean_plans_costed
        assert goo.quality.rho >= sdp.quality.rho - 0.05


class TestScaledFeasibility:
    """Table 2.1 / 3.2: hubs, not size, kill DP; SDP survives everywhere."""

    def test_chain_28_cheap_star_16_expensive(self, stats):
        # indirectly covered by table-2.1; here assert the core asymmetry
        # at a reduced scale to keep the suite fast
        from repro.bench.experiments.common import (
            ExperimentSettings,
            scaleup_catalog,
        )
        from repro.bench.workloads import make_query
        from repro.core import DynamicProgrammingOptimizer

        settings = ExperimentSettings(max_seconds=60)
        schema, sstats = scaleup_catalog(settings, 30)
        dp = DynamicProgrammingOptimizer(budget=settings.budget())
        chain = dp.optimize(
            make_query(WorkloadSpec("chain", 20, seed=0), schema, 0), sstats
        )
        star = dp.optimize(
            make_query(WorkloadSpec("star", 13, seed=0), schema, 0), sstats
        )
        # a 13-relation star already costs far more than a 20-relation chain
        assert star.plans_costed > 10 * chain.plans_costed
        assert star.modeled_memory_mb > 10 * chain.modeled_memory_mb

    def test_sdp_handles_large_star_within_budget(self, stats):
        from repro.bench.experiments.common import (
            ExperimentSettings,
            scaleup_catalog,
        )
        from repro.bench.workloads import make_query
        from repro.core import SDPOptimizer

        settings = ExperimentSettings(max_seconds=120)
        schema, sstats = scaleup_catalog(settings, 40)
        query = make_query(WorkloadSpec("star", 35, seed=0), schema, 0)
        result = SDPOptimizer(budget=settings.budget()).optimize(query, sstats)
        assert result.modeled_memory_mb < 1000
