"""Tests for repro.catalog.distributions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.distributions import (
    ExponentialDistribution,
    UniformDistribution,
    geometric_steps,
)
from repro.errors import CatalogError

domains = st.integers(min_value=1, max_value=5_000_000)
rows = st.integers(min_value=0, max_value=5_000_000)


class TestGeometricSteps:
    def test_exact_endpoints(self):
        steps = geometric_steps(100, 2_500_000, 25)
        assert steps[0] == 100
        assert steps[-1] == 2_500_000
        assert len(steps) == 25

    def test_paper_ratio_is_about_1_5(self):
        steps = geometric_steps(100, 2_500_000, 25)
        ratios = [b / a for a, b in zip(steps, steps[1:])]
        assert all(1.4 < r < 1.7 for r in ratios)

    def test_monotone_nondecreasing(self):
        steps = geometric_steps(10, 1000, 7)
        assert steps == sorted(steps)

    def test_single_step(self):
        assert geometric_steps(5, 100, 1) == [5]

    def test_equal_bounds(self):
        assert geometric_steps(7, 7, 3) == [7, 7, 7]

    def test_invalid(self):
        with pytest.raises(CatalogError):
            geometric_steps(0, 10, 3)
        with pytest.raises(CatalogError):
            geometric_steps(10, 5, 3)
        with pytest.raises(CatalogError):
            geometric_steps(1, 10, 0)


class TestUniformDistribution:
    dist = UniformDistribution()

    def test_zero_rows(self):
        assert self.dist.distinct_count(100, 0) == 0
        assert self.dist.most_common_fraction(100, 0) == 0.0

    def test_more_rows_than_domain_saturates(self):
        assert self.dist.distinct_count(10, 100_000) == 10

    def test_fewer_rows_bounded_by_rows(self):
        assert self.dist.distinct_count(1_000_000, 5) <= 5

    @given(domains, rows)
    def test_bounds(self, domain, n):
        d = self.dist.distinct_count(domain, n)
        assert 0 <= d <= min(domain, n) if n else d == 0

    @given(domains, rows.filter(lambda n: n > 0))
    def test_mcf_bounds(self, domain, n):
        frac = self.dist.most_common_fraction(domain, n)
        assert 0.0 < frac <= 1.0
        assert frac >= 1.0 / domain or frac >= 1.0 / n

    def test_occupancy_known_value(self):
        # 100 draws over 100 values: ~63.4 distinct expected.
        assert 60 <= self.dist.distinct_count(100, 100) <= 67

    def test_invalid_inputs(self):
        with pytest.raises(CatalogError):
            self.dist.distinct_count(0, 5)
        with pytest.raises(CatalogError):
            self.dist.distinct_count(10, -1)


class TestExponentialDistribution:
    def test_decay_validation(self):
        with pytest.raises(CatalogError):
            ExponentialDistribution(decay=0.0)
        with pytest.raises(CatalogError):
            ExponentialDistribution(decay=1.0)

    def test_skew_reduces_distinct(self):
        uniform = UniformDistribution()
        skewed = ExponentialDistribution(decay=0.5)
        assert skewed.distinct_count(10_000, 10_000) < uniform.distinct_count(
            10_000, 10_000
        )

    def test_head_mass(self):
        dist = ExponentialDistribution(decay=0.5)
        assert dist.most_common_fraction(1000, 1000) == pytest.approx(0.5)

    def test_zero_rows(self):
        dist = ExponentialDistribution()
        assert dist.distinct_count(100, 0) == 0
        assert dist.most_common_fraction(100, 0) == 0.0

    @given(
        st.floats(min_value=0.1, max_value=0.95),
        domains,
        rows.filter(lambda n: n > 0),
    )
    def test_bounds(self, decay, domain, n):
        dist = ExponentialDistribution(decay=decay)
        d = dist.distinct_count(domain, n)
        assert 1 <= d <= min(domain, n)
        frac = dist.most_common_fraction(domain, n)
        assert 0.0 < frac <= 1.0

    def test_gentler_decay_more_distinct(self):
        sharp = ExponentialDistribution(decay=0.5)
        gentle = ExponentialDistribution(decay=0.95)
        assert gentle.distinct_count(100_000, 100_000) > sharp.distinct_count(
            100_000, 100_000
        )

    def test_repr(self):
        assert "0.5" in repr(ExponentialDistribution(decay=0.5))
        assert repr(UniformDistribution()) == "UniformDistribution()"


class TestDegenerateDomains:
    def test_single_value_domain_uniform(self):
        dist = UniformDistribution()
        assert dist.distinct_count(1, 100) == 1
        assert dist.most_common_fraction(1, 100) == 1.0

    def test_single_value_domain_exponential(self):
        dist = ExponentialDistribution(decay=0.5)
        assert dist.distinct_count(1, 100) == 1
        assert dist.most_common_fraction(1, 100) == 1.0
