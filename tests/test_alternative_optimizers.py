"""Tests for the randomized (II, 2PO) and genetic (GEQO) baselines,
plus the k-dominant (strong) skyline."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    DynamicProgrammingOptimizer,
    GeneticConfig,
    GeneticOptimizer,
    IterativeImprovementOptimizer,
    RandomizedConfig,
    SDPConfig,
    SDPOptimizer,
    TwoPhaseOptimizer,
)
from repro.core.base import SearchBudget, SearchCounters
from repro.core.planspace import PlanSpace
from repro.core.randomized import _JoinOrderWalk
from repro.core.table import JCRTable
from repro.cost.model import DEFAULT_COST_MODEL
from repro.errors import OptimizationBudgetExceeded
from repro.plans import validate_plan
from repro.skyline import (
    k_dominant_skyline,
    k_dominates,
    naive_skyline,
)
from repro.util.rng import derive_rng
from repro.util.timer import Timer
from tests.conftest import make_chain_query, make_star_chain_query, make_star_query

vectors_3d = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=1,
    max_size=25,
)


class TestKDominance:
    def test_basic(self):
        assert k_dominates((1, 2, 9), (2, 3, 0), 2)
        assert not k_dominates((1, 2, 9), (2, 3, 0), 3)

    def test_equal_never_dominates(self):
        assert not k_dominates((1, 1, 1), (1, 1, 1), 1)

    def test_full_k_is_ordinary_dominance(self):
        assert k_dominates((1, 2, 3), (2, 2, 3), 3)
        assert not k_dominates((1, 2, 4), (2, 2, 3), 3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_dominates((1, 2), (3, 4), 0)
        with pytest.raises(ValueError):
            k_dominates((1, 2), (3, 4), 3)

    def test_can_be_cyclic(self):
        a, b = (1, 9, 5), (9, 1, 5)
        # both 1-dominate each other — k-dominance is not a partial order
        assert k_dominates(a, b, 1) and k_dominates(b, a, 1)

    @given(vectors_3d)
    def test_subset_of_ordinary_skyline(self, vecs):
        strong = k_dominant_skyline(vecs, 2)
        assert strong <= naive_skyline(vecs)

    @given(vectors_3d)
    def test_k_equals_d_matches_ordinary(self, vecs):
        assert k_dominant_skyline(vecs, 3) == naive_skyline(vecs)

    def test_known_example(self):
        assert k_dominant_skyline([(1, 4, 4), (2, 2, 2), (4, 1, 4)], 2) == {1}


class TestStrongSkylineSDP:
    def test_option3_runs_and_prunes_harder(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        strong = SDPOptimizer(config=SDPConfig(skyline_option=3)).optimize(
            query, small_stats
        )
        default = SDPOptimizer().optimize(query, small_stats)
        validate_plan(strong.plan, query.graph)
        assert strong.jcrs_created <= default.jcrs_created
        assert SDPOptimizer(config=SDPConfig(skyline_option=3)).name == "SDP(strong)"


class TestJoinOrderWalk:
    @pytest.fixture
    def walk(self, small_schema, small_stats):
        query = make_star_chain_query(small_schema, spokes=4, chain=2)
        counters = SearchCounters(SearchBudget.unlimited(), Timer().start())
        space = PlanSpace(query, small_stats, DEFAULT_COST_MODEL, counters)
        return _JoinOrderWalk(space, JCRTable(space.est), derive_rng(0, "t"))

    def test_random_orders_valid(self, walk):
        for _ in range(20):
            order = walk.random_order()
            assert sorted(order) == list(range(walk.graph.n))
            assert walk.is_valid(order)

    def test_moves_preserve_validity(self, walk):
        order = walk.random_order()
        for _ in range(20):
            moved = walk.random_move(order)
            if moved is not None:
                assert walk.is_valid(moved)
                assert sorted(moved) == sorted(order)
                order = moved

    def test_invalid_order_detected(self, walk):
        # two spokes first: second prefix is disconnected in a star-chain
        graph = walk.graph
        spokes = [i for i in range(graph.n) if graph.degree(i) == 1]
        assert len(spokes) >= 2
        order = spokes[:2] + [
            i for i in range(graph.n) if i not in spokes[:2]
        ]
        assert not walk.is_valid(order)

    def test_cost_matches_final_plan_availability(self, walk):
        order = walk.random_order()
        cost = walk.cost(order)
        assert cost > 0
        assert walk.final_plan().cost <= cost + 1e-9


class TestRandomizedOptimizers:
    @pytest.mark.parametrize(
        "optimizer_cls", [IterativeImprovementOptimizer, TwoPhaseOptimizer]
    )
    def test_valid_and_no_worse_than_worst(
        self, optimizer_cls, small_schema, small_stats
    ):
        query = make_star_chain_query(small_schema, spokes=4, chain=2)
        config = RandomizedConfig(restarts=2, moves_per_start=30, seed=1)
        result = optimizer_cls(config=config).optimize(query, small_stats)
        validate_plan(result.plan, query.graph)
        optimal = (
            DynamicProgrammingOptimizer().optimize(query, small_stats).cost
        )
        assert result.cost >= optimal - 1e-6

    def test_deterministic_given_seed(self, small_schema, small_stats):
        query = make_star_query(small_schema, 7)
        config = RandomizedConfig(restarts=2, moves_per_start=20, seed=5)
        a = IterativeImprovementOptimizer(config=config).optimize(
            query, small_stats
        )
        b = IterativeImprovementOptimizer(config=config).optimize(
            query, small_stats
        )
        assert a.cost == pytest.approx(b.cost)

    def test_single_relation(self, small_schema, small_stats):
        from repro.query import JoinGraph, Query

        graph = JoinGraph([small_schema.relation_names[0]], [])
        query = Query(small_schema, graph, label="one")
        result = IterativeImprovementOptimizer().optimize(query, small_stats)
        assert result.plan.is_scan

    def test_budget_respected(self, schema, stats):
        query = make_star_query(schema, 12)
        tiny = SearchBudget(max_memory_bytes=100_000)
        with pytest.raises(OptimizationBudgetExceeded):
            IterativeImprovementOptimizer(budget=tiny).optimize(query, stats)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomizedConfig(restarts=0)
        with pytest.raises(ValueError):
            RandomizedConfig(moves_per_start=0)
        with pytest.raises(ValueError):
            RandomizedConfig(cooling=1.5)


class TestGenetic:
    def test_valid_and_sound(self, small_schema, small_stats):
        query = make_star_chain_query(small_schema, spokes=4, chain=2)
        config = GeneticConfig(population=8, generations=4, seed=2)
        result = GeneticOptimizer(config=config).optimize(query, small_stats)
        validate_plan(result.plan, query.graph)
        optimal = (
            DynamicProgrammingOptimizer().optimize(query, small_stats).cost
        )
        assert result.cost >= optimal - 1e-6

    def test_deterministic(self, small_schema, small_stats):
        query = make_star_query(small_schema, 7)
        config = GeneticConfig(population=6, generations=3, seed=3)
        a = GeneticOptimizer(config=config).optimize(query, small_stats)
        b = GeneticOptimizer(config=config).optimize(query, small_stats)
        assert a.cost == pytest.approx(b.cost)

    def test_recombination_produces_valid_children(
        self, small_schema, small_stats
    ):
        query = make_star_chain_query(small_schema, spokes=4, chain=2)
        counters = SearchCounters(SearchBudget.unlimited(), Timer().start())
        space = PlanSpace(query, small_stats, DEFAULT_COST_MODEL, counters)
        walk = _JoinOrderWalk(space, JCRTable(space.est), derive_rng(0, "g"))
        rng = derive_rng(1, "recombine")
        for _ in range(15):
            mother, father = walk.random_order(), walk.random_order()
            child = GeneticOptimizer._recombine(mother, father, walk, rng)
            assert sorted(child) == sorted(mother)
            assert walk.is_valid(child)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GeneticConfig(population=1)
        with pytest.raises(ValueError):
            GeneticConfig(generations=0)
        with pytest.raises(ValueError):
            GeneticConfig(mutation_rate=1.5)


class TestIDP2:
    def test_valid_and_sound(self, small_schema, small_stats):
        from repro.core.idp2 import IDP2Config, IDP2Optimizer

        query = make_star_chain_query(small_schema, spokes=4, chain=2)
        result = IDP2Optimizer(IDP2Config(k=4)).optimize(query, small_stats)
        validate_plan(result.plan, query.graph)
        optimal = (
            DynamicProgrammingOptimizer().optimize(query, small_stats).cost
        )
        assert result.cost >= optimal - 1e-6

    def test_small_query_equals_dp(self, small_schema, small_stats):
        from repro.core.idp2 import IDP2Config, IDP2Optimizer

        query = make_star_query(small_schema, 6)
        dp_cost = (
            DynamicProgrammingOptimizer().optimize(query, small_stats).cost
        )
        idp2 = IDP2Optimizer(IDP2Config(k=7)).optimize(query, small_stats)
        assert idp2.cost == pytest.approx(dp_cost)

    def test_registry_name(self):
        from repro.core import make_optimizer

        optimizer = make_optimizer("IDP2(5)")
        assert optimizer.name == "IDP2(5)"
        assert optimizer.config.k == 5

    def test_config_validation(self):
        from repro.core.idp2 import IDP2Config

        with pytest.raises(ValueError):
            IDP2Config(k=1)

    def test_runs_on_paper_scale(self, schema, stats):
        from repro.core.idp2 import IDP2Config, IDP2Optimizer
        from tests.conftest import make_star_chain_query

        query = make_star_chain_query(schema, spokes=8, chain=3)
        result = IDP2Optimizer(IDP2Config(k=6)).optimize(query, stats)
        validate_plan(result.plan, query.graph)
        assert result.jcrs_created > 0
