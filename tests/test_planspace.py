"""Tests for repro.core.planspace (the shared costing engine)."""

from __future__ import annotations

import pytest

from repro.core.base import SearchBudget, SearchCounters
from repro.core.planspace import PlanSpace
from repro.core.table import JCRTable
from repro.cost.model import DEFAULT_COST_MODEL
from repro.errors import OptimizationError
from repro.plans.records import INDEX_SCAN, SEQ_SCAN, SORT
from repro.query import JoinGraph, Query, star_joins
from repro.util.timer import Timer


@pytest.fixture
def space_and_table(small_schema, small_stats):
    names = list(small_schema.relation_names[:4])
    graph = JoinGraph(names, star_joins(small_schema, names[0], names[1:]))
    query = Query(small_schema, graph, label="space-test")
    counters = SearchCounters(SearchBudget.unlimited(), Timer().start())
    space = PlanSpace(query, small_stats, DEFAULT_COST_MODEL, counters)
    return space, JCRTable(space.est)


class TestBaseJCR:
    def test_seq_scan_always_present(self, space_and_table):
        space, table = space_and_table
        jcr = space.base_jcr(table, 0)
        methods = {p.method for p in jcr.plans.values()}
        assert SEQ_SCAN in methods

    def test_spoke_gets_index_scan_with_order(self, space_and_table):
        space, table = space_and_table
        # spokes join on their indexed column; the order is useful while the
        # hub is still outside
        jcr = space.base_jcr(table, 1)
        ordered = [p for p in jcr.plans.values() if p.method == INDEX_SCAN]
        assert ordered and all(p.order is not None for p in ordered)

    def test_counters_charged(self, space_and_table):
        space, table = space_and_table
        before = space.counters.plans_costed
        space.base_jcr(table, 0)
        assert space.counters.plans_costed > before


class TestJoin:
    def test_overlapping_inputs_rejected(self, space_and_table):
        space, table = space_and_table
        a = space.base_jcr(table, 0)
        assert space.join(table, a, a) is None

    def test_cartesian_returns_none(self, space_and_table):
        space, table = space_and_table
        b = space.base_jcr(table, 1)
        c = space.base_jcr(table, 2)
        assert space.join(table, b, c) is None  # two spokes: no edge

    def test_join_creates_jcr_with_methods(self, space_and_table):
        space, table = space_and_table
        hub = space.base_jcr(table, 0)
        spoke = space.base_jcr(table, 1)
        jcr = space.join(table, hub, spoke)
        assert jcr is not None
        assert jcr.mask == 0b11
        assert jcr.rows == space.rows(0b11)
        assert jcr.best.cost > 0

    def test_rows_identical_across_orders(self, space_and_table):
        space, table = space_and_table
        hub = space.base_jcr(table, 0)
        s1 = space.base_jcr(table, 1)
        s2 = space.base_jcr(table, 2)
        j1 = space.join(table, space.join(table, hub, s1), s2)
        fresh = JCRTable(space.est)
        hub2 = space.base_jcr(fresh, 0)
        s12 = space.base_jcr(fresh, 1)
        s22 = space.base_jcr(fresh, 2)
        j2 = space.join(fresh, space.join(fresh, hub2, s22), s12)
        assert j1.rows == pytest.approx(j2.rows)

    def test_index_nestloop_generated_for_indexed_inner(self, space_and_table):
        space, table = space_and_table
        hub = space.base_jcr(table, 0)
        spoke = space.base_jcr(table, 1)
        jcr = space.join(table, hub, spoke)
        methods = {p.method for p in jcr.plans.values()}
        # spokes are indexed on the join column, so an index NL must have
        # been costed; whether it is retained depends on cost, so check the
        # costing count instead
        assert space.counters.plans_costed > 4
        assert jcr.best.method in methods


class TestFinalize:
    def test_incomplete_jcr_rejected(self, space_and_table):
        space, table = space_and_table
        jcr = space.base_jcr(table, 0)
        with pytest.raises(OptimizationError):
            space.finalize(jcr)

    def test_unordered_query_returns_best(self, space_and_table):
        space, table = space_and_table
        jcrs = [space.base_jcr(table, i) for i in range(4)]
        current = jcrs[0]
        for nxt in jcrs[1:]:
            current = space.join(table, current, nxt)
        final = space.finalize(current)
        assert final is current.best

    def test_ordered_query_appends_sort_when_needed(
        self, small_schema, small_stats
    ):
        names = list(small_schema.relation_names[:4])
        joins = star_joins(small_schema, names[0], names[1:])
        graph = JoinGraph(names, joins)
        spoke, column = joins[0][2], joins[0][3]
        query = Query(small_schema, graph, order_by=(spoke, column))
        counters = SearchCounters(SearchBudget.unlimited(), Timer().start())
        space = PlanSpace(query, small_stats, DEFAULT_COST_MODEL, counters)
        table = JCRTable(space.est)
        jcrs = [space.base_jcr(table, i) for i in range(4)]
        current = jcrs[0]
        for nxt in jcrs[1:]:
            current = space.join(table, current, nxt)
        final = space.finalize(current)
        assert final.order == query.order_by_eclass or final.method == SORT
        assert final.cost >= current.best.cost
