"""Tests for deterministic fault injection (repro.robust.faults)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.base import SearchBudget
from repro.core.registry import make_optimizer
from repro.cost.model import DEFAULT_COST_MODEL
from repro.errors import (
    CatalogError,
    FaultInjected,
    OptimizationBudgetExceeded,
    OptimizationError,
)
from repro.plans.validate import validate_plan
from repro.robust import (
    CostModelFault,
    FaultHarness,
    FaultPlan,
    FaultyCostModel,
    InjectedBudgetExceeded,
    RobustOptimizer,
    SlowCostModel,
    WorkerCrashFault,
)
from repro.service import optimize_many
from tests.conftest import make_star_query

pytestmark = pytest.mark.faults


@pytest.fixture
def query(small_schema):
    return make_star_query(small_schema, 8)


class TestBudgetTrip:
    def test_trips_first_rung_then_recovers(self, query, small_stats):
        harness = FaultHarness(seed=7)
        robust = RobustOptimizer()
        with harness.budget_trip(robust, at_event=100, resource="memory"):
            result = robust.optimize(query, small_stats)
        assert result.degraded
        first = result.attempts[0]
        assert first.outcome == "budget-exceeded"
        assert first.resource == "memory"
        assert result.attempts[-1].outcome == "ok"
        validate_plan(result.plan, query.graph)

    def test_injected_exception_is_both_fault_and_budget(self, query, small_stats):
        optimizer = make_optimizer("DP")
        with FaultHarness(seed=1).budget_trip(optimizer, at_event=1):
            with pytest.raises(OptimizationBudgetExceeded) as err:
                optimizer.optimize(query, small_stats)
        assert isinstance(err.value, FaultInjected)
        assert isinstance(err.value, InjectedBudgetExceeded)

    def test_deterministic_attempt_logs(self, query, small_stats):
        signatures = []
        for _ in range(2):
            harness = FaultHarness(seed=99)
            robust = RobustOptimizer()
            with harness.budget_trip(robust, resource="costing"):
                result = robust.optimize(query, small_stats)
            signatures.append(result.attempt_signature())
        assert signatures[0] == signatures[1]

    def test_different_seeds_can_differ(self, query, small_stats):
        # Seed-derived trip points differ, so the used-at-trip counts in
        # the attempt details differ (the ladder shape may coincide).
        def signature(seed):
            robust = RobustOptimizer()
            with FaultHarness(seed=seed).budget_trip(robust):
                return robust.optimize(query, small_stats).attempt_signature()

        assert signature(1) != signature(2)

    def test_no_state_leaks_after_exit(self, query, small_stats):
        harness = FaultHarness(seed=7)
        robust = RobustOptimizer()
        with harness.budget_trip(robust, at_event=1):
            degraded = robust.optimize(query, small_stats)
        assert degraded.degraded
        assert robust.checkpoint is None
        clean = robust.optimize(query, small_stats)
        assert not clean.degraded

    def test_prior_hook_chained_and_restored(self, query, small_stats):
        calls = []
        robust = RobustOptimizer()
        robust.checkpoint = lambda counters: calls.append(1)
        with FaultHarness(seed=7).budget_trip(robust, at_event=10**12):
            robust.optimize(query, small_stats)
        assert calls, "prior checkpoint hook was not chained"
        assert robust.checkpoint is not None
        assert robust.checkpoint.__name__ == "<lambda>"


class TestCostModelFaults:
    def test_transient_fault_degrades_then_heals(self, query, small_stats):
        harness = FaultHarness(seed=5)
        robust = RobustOptimizer()
        with harness.cost_model_faults(robust, fail_after=200) as proxy:
            result = robust.optimize(query, small_stats)
            assert proxy.reads >= 200
        assert result.degraded
        first = result.attempts[0]
        assert first.outcome == "error"
        assert "CostModelFault" in first.detail
        assert result.attempts[-1].outcome == "ok"
        assert robust.cost_model is DEFAULT_COST_MODEL

    def test_plain_optimizer_surfaces_fault(self, query, small_stats):
        optimizer = make_optimizer("SDP")
        with FaultHarness(seed=5).cost_model_faults(optimizer, fail_after=50):
            with pytest.raises(CostModelFault):
                optimizer.optimize(query, small_stats)
        assert optimizer.cost_model is DEFAULT_COST_MODEL

    def test_proxy_forwards_cleanly_outside_window(self):
        proxy = FaultyCostModel(DEFAULT_COST_MODEL, fail_after=3, fail_count=1)
        assert proxy.seq_page_cost == DEFAULT_COST_MODEL.seq_page_cost
        assert proxy.random_page_cost == DEFAULT_COST_MODEL.random_page_cost
        with pytest.raises(CostModelFault):
            _ = proxy.cpu_tuple_cost
        # Window passed: healthy again.
        assert proxy.cpu_tuple_cost == DEFAULT_COST_MODEL.cpu_tuple_cost
        assert proxy.reads == 4

    def test_proxy_validation(self):
        with pytest.raises(ValueError):
            FaultyCostModel(DEFAULT_COST_MODEL, fail_after=0)
        with pytest.raises(ValueError):
            FaultyCostModel(DEFAULT_COST_MODEL, fail_after=1, fail_count=0)


class TestPerturbedStatistics:
    def test_original_snapshot_untouched(self, small_stats):
        harness = FaultHarness(seed=3)
        before = {
            name: small_stats.table(name).row_count
            for name in small_stats.table_names
        }
        harness.perturbed_statistics(small_stats, mode="zero", fraction=1.0)
        after = {
            name: small_stats.table(name).row_count
            for name in small_stats.table_names
        }
        assert before == after

    def test_zero_mode_breaks_estimation(self, query, small_stats):
        corrupt = FaultHarness(seed=3).perturbed_statistics(
            small_stats, mode="zero", fraction=1.0
        )
        with pytest.raises(OptimizationError) as err:
            RobustOptimizer().optimize(query, corrupt)
        # Every rung failed; the error carries the full attempt log.
        attempts = err.value.attempts
        assert all(a.outcome == "error" for a in attempts)
        assert all("CatalogError" in a.detail for a in attempts)

    def test_inflate_mode_still_yields_plan(self, query, small_stats):
        inflated = FaultHarness(seed=3).perturbed_statistics(
            small_stats, mode="inflate", fraction=0.5, factor=100.0
        )
        result = RobustOptimizer().optimize(query, inflated)
        validate_plan(result.plan, query.graph)

    def test_deterministic_selection(self, small_stats):
        def inflated_rows(seed):
            snapshot = FaultHarness(seed=seed).perturbed_statistics(
                small_stats, mode="inflate", fraction=0.4
            )
            return tuple(
                snapshot.table(name).row_count
                for name in sorted(snapshot.table_names)
            )

        assert inflated_rows(11) == inflated_rows(11)
        assert inflated_rows(11) != inflated_rows(12)

    def test_bad_arguments_rejected(self, small_stats):
        harness = FaultHarness()
        with pytest.raises(ValueError):
            harness.perturbed_statistics(small_stats, mode="scramble")
        with pytest.raises(ValueError):
            harness.perturbed_statistics(small_stats, fraction=0.0)


class TestLatencyFault:
    def test_slow_search_returns_identical_result(self, query, small_stats):
        optimizer = make_optimizer("SDP")
        clean = optimizer.optimize(query, small_stats)
        with FaultHarness(seed=3).latency(
            optimizer, delay_seconds=0.0005, every=16
        ) as slow:
            faulted = optimizer.optimize(query, small_stats)
            assert slow.sleeps > 0  # the fault actually fired
        assert faulted.cost == clean.cost
        assert repr(faulted.plan) == repr(clean.plan)
        assert faulted.plans_costed == clean.plans_costed
        assert optimizer.cost_model is DEFAULT_COST_MODEL  # restored

    def test_derived_delay_is_seeded(self, query):
        def delay(seed):
            optimizer = make_optimizer("SDP")
            with FaultHarness(seed=seed).latency(optimizer) as slow:
                return slow.__dict__["_delay"]

        assert delay(7) == delay(7)
        assert 0.001 <= delay(7) <= 0.010
        assert delay(7) != delay(8)

    def test_proxy_validation(self):
        with pytest.raises(ValueError):
            SlowCostModel(DEFAULT_COST_MODEL, delay_seconds=0.0)
        with pytest.raises(ValueError):
            SlowCostModel(DEFAULT_COST_MODEL, delay_seconds=0.001, every=0)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_fraction=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_seconds=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(latency_every=0)

    def test_crashes_are_deterministic_and_transient(self):
        plan = FaultPlan(seed=1, crash_fraction=0.5)
        cells = [(q, t) for q in range(10) for t in ("DP", "SDP")]
        crashed = {c for c in cells if plan.should_crash(*c, attempt=0)}
        assert crashed  # a 50% fraction over 20 cells hits some...
        assert crashed != set(cells)  # ...but not all
        # Pure function of (seed, cell): the same plan re-agrees.
        assert crashed == {c for c in cells if plan.should_crash(*c, attempt=0)}
        # Retries always run clean — crashes are transient by construction.
        assert not any(plan.should_crash(q, t, attempt=1) for q, t in cells)

    def test_maybe_crash_raises_with_coordinates(self):
        plan = FaultPlan(seed=1, crash_fraction=1.0)
        with pytest.raises(WorkerCrashFault) as excinfo:
            plan.maybe_crash(4, "GOO", attempt=0)
        assert excinfo.value.query_index == 4
        assert excinfo.value.technique == "GOO"

    def test_plan_round_trips_through_pickle(self):
        plan = FaultPlan(seed=9, crash_fraction=0.25, latency_seconds=0.002)
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_wrap_cost_model_gated_on_latency(self):
        assert (
            FaultPlan().wrap_cost_model(DEFAULT_COST_MODEL)
            is DEFAULT_COST_MODEL
        )
        wrapped = FaultPlan(latency_seconds=0.001).wrap_cost_model(
            DEFAULT_COST_MODEL
        )
        assert isinstance(wrapped, SlowCostModel)


class TestFaultedBatches:
    def _grid_key(self, grid):
        return [
            [
                (
                    item.query_index,
                    item.technique,
                    None
                    if item.result is None
                    else (
                        item.result.cost,
                        item.result.plans_costed,
                        repr(item.result.plan),
                    ),
                )
                for item in row
            ]
            for row in grid
        ]

    def test_faulted_grid_matches_clean_grid(self, small_schema, small_stats):
        queries = [make_star_query(small_schema, n) for n in (4, 5, 6)]
        techniques = ["SDP", "GOO"]
        plan = FaultPlan(
            seed=2, crash_fraction=0.5, latency_seconds=0.0005, latency_every=64
        )
        # The schedule must actually kill something for this to mean much.
        assert any(
            plan.should_crash(q, t, attempt=0)
            for q in range(len(queries))
            for t in techniques
        )
        clean = optimize_many(
            queries, techniques, stats=small_stats, workers=1
        )
        for workers in (1, 2):
            faulted = optimize_many(
                queries,
                techniques,
                stats=small_stats,
                workers=workers,
                faults=plan,
            )
            assert self._grid_key(faulted) == self._grid_key(clean)

    def test_latency_only_plan_matches_clean(self, small_schema, small_stats):
        queries = [make_star_query(small_schema, 5)]
        plan = FaultPlan(seed=0, latency_seconds=0.0005, latency_every=32)
        clean = optimize_many(queries, ["SDP"], stats=small_stats, workers=1)
        faulted = optimize_many(
            queries, ["SDP"], stats=small_stats, workers=1, faults=plan
        )
        assert self._grid_key(faulted) == self._grid_key(clean)
