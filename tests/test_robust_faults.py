"""Tests for deterministic fault injection (repro.robust.faults)."""

from __future__ import annotations

import pytest

from repro.core.base import SearchBudget
from repro.core.registry import make_optimizer
from repro.cost.model import DEFAULT_COST_MODEL
from repro.errors import (
    CatalogError,
    FaultInjected,
    OptimizationBudgetExceeded,
    OptimizationError,
)
from repro.plans.validate import validate_plan
from repro.robust import (
    CostModelFault,
    FaultHarness,
    FaultyCostModel,
    InjectedBudgetExceeded,
    RobustOptimizer,
)
from tests.conftest import make_star_query

pytestmark = pytest.mark.faults


@pytest.fixture
def query(small_schema):
    return make_star_query(small_schema, 8)


class TestBudgetTrip:
    def test_trips_first_rung_then_recovers(self, query, small_stats):
        harness = FaultHarness(seed=7)
        robust = RobustOptimizer()
        with harness.budget_trip(robust, at_event=100, resource="memory"):
            result = robust.optimize(query, small_stats)
        assert result.degraded
        first = result.attempts[0]
        assert first.outcome == "budget-exceeded"
        assert first.resource == "memory"
        assert result.attempts[-1].outcome == "ok"
        validate_plan(result.plan, query.graph)

    def test_injected_exception_is_both_fault_and_budget(self, query, small_stats):
        optimizer = make_optimizer("DP")
        with FaultHarness(seed=1).budget_trip(optimizer, at_event=1):
            with pytest.raises(OptimizationBudgetExceeded) as err:
                optimizer.optimize(query, small_stats)
        assert isinstance(err.value, FaultInjected)
        assert isinstance(err.value, InjectedBudgetExceeded)

    def test_deterministic_attempt_logs(self, query, small_stats):
        signatures = []
        for _ in range(2):
            harness = FaultHarness(seed=99)
            robust = RobustOptimizer()
            with harness.budget_trip(robust, resource="costing"):
                result = robust.optimize(query, small_stats)
            signatures.append(result.attempt_signature())
        assert signatures[0] == signatures[1]

    def test_different_seeds_can_differ(self, query, small_stats):
        # Seed-derived trip points differ, so the used-at-trip counts in
        # the attempt details differ (the ladder shape may coincide).
        def signature(seed):
            robust = RobustOptimizer()
            with FaultHarness(seed=seed).budget_trip(robust):
                return robust.optimize(query, small_stats).attempt_signature()

        assert signature(1) != signature(2)

    def test_no_state_leaks_after_exit(self, query, small_stats):
        harness = FaultHarness(seed=7)
        robust = RobustOptimizer()
        with harness.budget_trip(robust, at_event=1):
            degraded = robust.optimize(query, small_stats)
        assert degraded.degraded
        assert robust.checkpoint is None
        clean = robust.optimize(query, small_stats)
        assert not clean.degraded

    def test_prior_hook_chained_and_restored(self, query, small_stats):
        calls = []
        robust = RobustOptimizer()
        robust.checkpoint = lambda counters: calls.append(1)
        with FaultHarness(seed=7).budget_trip(robust, at_event=10**12):
            robust.optimize(query, small_stats)
        assert calls, "prior checkpoint hook was not chained"
        assert robust.checkpoint is not None
        assert robust.checkpoint.__name__ == "<lambda>"


class TestCostModelFaults:
    def test_transient_fault_degrades_then_heals(self, query, small_stats):
        harness = FaultHarness(seed=5)
        robust = RobustOptimizer()
        with harness.cost_model_faults(robust, fail_after=200) as proxy:
            result = robust.optimize(query, small_stats)
            assert proxy.reads >= 200
        assert result.degraded
        first = result.attempts[0]
        assert first.outcome == "error"
        assert "CostModelFault" in first.detail
        assert result.attempts[-1].outcome == "ok"
        assert robust.cost_model is DEFAULT_COST_MODEL

    def test_plain_optimizer_surfaces_fault(self, query, small_stats):
        optimizer = make_optimizer("SDP")
        with FaultHarness(seed=5).cost_model_faults(optimizer, fail_after=50):
            with pytest.raises(CostModelFault):
                optimizer.optimize(query, small_stats)
        assert optimizer.cost_model is DEFAULT_COST_MODEL

    def test_proxy_forwards_cleanly_outside_window(self):
        proxy = FaultyCostModel(DEFAULT_COST_MODEL, fail_after=3, fail_count=1)
        assert proxy.seq_page_cost == DEFAULT_COST_MODEL.seq_page_cost
        assert proxy.random_page_cost == DEFAULT_COST_MODEL.random_page_cost
        with pytest.raises(CostModelFault):
            _ = proxy.cpu_tuple_cost
        # Window passed: healthy again.
        assert proxy.cpu_tuple_cost == DEFAULT_COST_MODEL.cpu_tuple_cost
        assert proxy.reads == 4

    def test_proxy_validation(self):
        with pytest.raises(ValueError):
            FaultyCostModel(DEFAULT_COST_MODEL, fail_after=0)
        with pytest.raises(ValueError):
            FaultyCostModel(DEFAULT_COST_MODEL, fail_after=1, fail_count=0)


class TestPerturbedStatistics:
    def test_original_snapshot_untouched(self, small_stats):
        harness = FaultHarness(seed=3)
        before = {
            name: small_stats.table(name).row_count
            for name in small_stats.table_names
        }
        harness.perturbed_statistics(small_stats, mode="zero", fraction=1.0)
        after = {
            name: small_stats.table(name).row_count
            for name in small_stats.table_names
        }
        assert before == after

    def test_zero_mode_breaks_estimation(self, query, small_stats):
        corrupt = FaultHarness(seed=3).perturbed_statistics(
            small_stats, mode="zero", fraction=1.0
        )
        with pytest.raises(OptimizationError) as err:
            RobustOptimizer().optimize(query, corrupt)
        # Every rung failed; the error carries the full attempt log.
        attempts = err.value.attempts
        assert all(a.outcome == "error" for a in attempts)
        assert all("CatalogError" in a.detail for a in attempts)

    def test_inflate_mode_still_yields_plan(self, query, small_stats):
        inflated = FaultHarness(seed=3).perturbed_statistics(
            small_stats, mode="inflate", fraction=0.5, factor=100.0
        )
        result = RobustOptimizer().optimize(query, inflated)
        validate_plan(result.plan, query.graph)

    def test_deterministic_selection(self, small_stats):
        def inflated_rows(seed):
            snapshot = FaultHarness(seed=seed).perturbed_statistics(
                small_stats, mode="inflate", fraction=0.4
            )
            return tuple(
                snapshot.table(name).row_count
                for name in sorted(snapshot.table_names)
            )

        assert inflated_rows(11) == inflated_rows(11)
        assert inflated_rows(11) != inflated_rows(12)

    def test_bad_arguments_rejected(self, small_stats):
        harness = FaultHarness()
        with pytest.raises(ValueError):
            harness.perturbed_statistics(small_stats, mode="scramble")
        with pytest.raises(ValueError):
            harness.perturbed_statistics(small_stats, fraction=0.0)
