"""DPconv kernel plumbing and the convolution-bound hybrid pruning.

Bit-identity of the ``dpconv`` kernel against the other kernels under
C_out cost lives in ``tests/test_kernel_equivalence.py``; this module
covers everything around it:

* :func:`repro.skyline.bound_covered` — the threshold-augmented
  dominance primitive the hybrid bound is built on;
* ``bound="dpconv"`` hybrid pruning — identical final plan and cost to
  an unbounded search, never more ``plans_costed``, across topologies,
  techniques, the robust ladder, and the TPC-H-lite workload;
* the kernel registry as single source of truth — ``kernel_name``
  errors, ``sdp-bench --list-kernels`` and ``docs/api.md`` all agree
  with :data:`repro.core.kernel.KERNELS`;
* the facade knobs — ``technique="dpconv"``, ``bound=``, their
  rejection paths, and the ``service=`` mutual exclusion.
"""

from __future__ import annotations

import os

import pytest

import repro
from repro.core.base import SearchBudget, SearchCounters
from repro.core.dpconv import DPconvPlanSpace, cardinality_layer
from repro.core.kernel import KERNELS, kernel_name, make_planspace
from repro.core.planspace import PLAN_SPACE_BOUNDS
from repro.core.registry import available_techniques, make_optimizer
from repro.cost import COUT_COST_MODEL, DEFAULT_COST_MODEL
from repro.errors import DPconvUnsupportedError, OptimizationError
from repro.skyline import bound_covered
from repro.util.timer import Timer
from repro.workloads import tpch_lite_queries, tpch_lite_schema
from tests.conftest import (
    make_chain_query,
    make_star_chain_query,
    make_star_query,
)

BUDGET = SearchBudget(max_seconds=60.0)


def serialize(plan) -> tuple:
    """Full recursive identity of a plan record: shape, methods, numbers."""
    children = tuple(
        serialize(child) for child in (plan.left, plan.right) if child is not None
    )
    return (
        plan.method,
        plan.mask,
        plan.rel,
        plan.eclass,
        plan.order,
        plan.rows,
        plan.cost,
        children,
    )


class TestBoundCovered:
    def test_covered_when_every_key_cheap_enough(self):
        assert bound_covered(5.0, {None: 0, "o": 1}, [4.0, 5.0], (None, "o"))

    def test_equal_cost_counts_as_covered(self):
        # Strict-improvement retention: a candidate at exactly the
        # incumbent's cost would not replace it, so equality covers.
        assert bound_covered(5.0, {None: 0}, [5.0], (None,))

    def test_missing_slot_fails_coverage(self):
        assert not bound_covered(5.0, {None: 0}, [4.0], (None, "order"))

    def test_expensive_incumbent_fails_coverage(self):
        assert not bound_covered(5.0, {None: 0, "o": 1}, [4.0, 6.0], (None, "o"))

    def test_no_keys_is_trivially_covered(self):
        assert bound_covered(0.0, {}, [], ())


class TestCardinalityLayer:
    def test_small_cardinalities(self):
        assert cardinality_layer(0.0) == 0
        assert cardinality_layer(1.0) == 1
        assert cardinality_layer(3.0) == 2

    def test_layers_quantize_by_powers_of_two(self):
        # Doubling 1 + rows advances the layer by exactly one.
        for rows in (1.0, 10.0, 1000.0, 1e6):
            assert (
                cardinality_layer(2.0 * (1.0 + rows) - 1.0)
                == cardinality_layer(rows) + 1
            )

    def test_monotonic(self):
        layers = [cardinality_layer(float(r)) for r in range(0, 5000, 7)]
        assert layers == sorted(layers)


@pytest.mark.parametrize("technique", ("DP", "SDP", "IDP(4)"))
def test_hybrid_bound_preserves_outcomes(technique, small_schema, small_stats):
    """``bound="dpconv"`` is pruning-only: same plan, never more costing."""
    queries = (
        make_star_query(small_schema, 8),
        make_chain_query(small_schema, 8),
        make_star_chain_query(small_schema, 4, 4),
    )
    for query in queries:
        plain = make_optimizer(technique, budget=BUDGET).optimize(
            query, small_stats
        )
        bounded = make_optimizer(technique, budget=BUDGET, bound="dpconv").optimize(
            query, small_stats
        )
        label = f"{technique} {query.label}"
        assert bounded.cost == plain.cost, label
        assert bounded.rows == plain.rows, label
        assert serialize(bounded.plan) == serialize(plain.plan), label
        assert bounded.plans_costed <= plain.plans_costed, label


def test_hybrid_bound_on_tpch_lite_workload():
    schema = tpch_lite_schema()
    stats = repro.analyze(schema)
    for query in tpch_lite_queries(schema):
        plain = make_optimizer("SDP", budget=BUDGET).optimize(query, stats)
        bounded = make_optimizer("SDP", budget=BUDGET, bound="dpconv").optimize(
            query, stats
        )
        assert bounded.cost == plain.cost, query.label
        assert serialize(bounded.plan) == serialize(plain.plan), query.label
        assert bounded.plans_costed <= plain.plans_costed, query.label


def test_hybrid_bound_skips_work_on_sdp_star(small_schema, small_stats):
    """On a star the bound must actually skip pairs, not just break even."""
    query = make_star_query(small_schema, 8)
    plain = make_optimizer("SDP", budget=BUDGET).optimize(query, small_stats)
    bounded = make_optimizer("SDP", budget=BUDGET, bound="dpconv").optimize(
        query, small_stats
    )
    assert bounded.cost == plain.cost
    assert bounded.plans_costed < plain.plans_costed


class TestKernelRegistry:
    def test_registry_names(self):
        assert tuple(KERNELS) == ("fast", "reference", "parallel", "dpconv")
        for name, description in KERNELS.items():
            assert kernel_name(name) == name
            assert description  # every kernel carries a one-line description

    def test_unknown_kernel_error_lists_registry(self):
        with pytest.raises(OptimizationError) as excinfo:
            kernel_name("bogus")
        for name in KERNELS:
            assert name in str(excinfo.value)

    def test_docs_render_the_same_registry(self):
        api_md = os.path.join(
            os.path.dirname(__file__), "..", "docs", "api.md"
        )
        with open(api_md, encoding="utf-8") as handle:
            text = handle.read()
        for name in KERNELS:
            assert f"`{name}`" in text, f"kernel {name!r} missing from docs/api.md"

    def test_list_kernels_cli(self, capsys):
        from repro.bench.cli import main

        assert main(["--list-kernels"]) == 0
        out = capsys.readouterr().out
        for name in KERNELS:
            assert out.startswith(name) or f"\n{name}" in out


class TestDPconvTechnique:
    def test_advertised_and_constructible(self):
        assert "DPconv" in available_techniques()
        optimizer = make_optimizer("DPconv")
        # C_out is the only regime the kernel is exact in, so it is the
        # technique's default cost model.
        assert optimizer.cost_model is COUT_COST_MODEL

    def test_facade_technique_matches_dp_under_cout(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 7)
        conv = repro.optimize(query, stats=small_stats, technique="dpconv")
        witness = make_optimizer(
            "DP", budget=BUDGET, cost_model=COUT_COST_MODEL
        ).optimize(query, small_stats)
        assert conv.cost == witness.cost
        assert serialize(conv.plan) == serialize(witness.plan)

    def test_non_cout_model_rejected_at_search_time(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 5)
        optimizer = make_optimizer("DPconv", cost_model=DEFAULT_COST_MODEL)
        with pytest.raises(DPconvUnsupportedError):
            optimizer.optimize(query, small_stats)


class TestFacadeBoundKnob:
    def test_bound_matches_unbounded(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        plain = repro.optimize(query, stats=small_stats)
        bounded = repro.optimize(query, stats=small_stats, bound="dpconv")
        assert bounded.cost == plain.cost
        assert serialize(bounded.plan) == serialize(plain.plan)
        assert bounded.plans_costed <= plain.plans_costed

    def test_robust_ladder_inherits_bound(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        plain = repro.optimize(query, stats=small_stats, robust=True)
        bounded = repro.optimize(
            query, stats=small_stats, robust=True, bound="dpconv"
        )
        assert bounded.cost == plain.cost
        assert serialize(bounded.plan) == serialize(plain.plan)
        assert bounded.plans_costed <= plain.plans_costed

    def test_unknown_bound_rejected_everywhere(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        assert PLAN_SPACE_BOUNDS == ("dpconv",)
        with pytest.raises(OptimizationError):
            make_optimizer("SDP", bound="nope")
        with pytest.raises(OptimizationError):
            repro.optimize(query, stats=small_stats, bound="nope")
        with pytest.raises(OptimizationError):
            repro.optimize(query, stats=small_stats, robust=True, bound="nope")
        counters = SearchCounters(BUDGET, Timer().start())
        with pytest.raises(OptimizationError):
            make_planspace(
                query, small_stats, DEFAULT_COST_MODEL, counters, bound="nope"
            )

    def test_bound_conflicts_with_service(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        service = repro.OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        with pytest.raises(OptimizationError):
            repro.optimize(query, service=service, bound="dpconv")


class TestBoundForcesSerialKernel:
    def test_parallel_request_with_bound_stays_serial(
        self, small_schema, small_stats
    ):
        # The skip bookkeeping is per-space state the fan-out workers do
        # not share, so a bound must select the serial fast kernel even
        # when the parallel driver was requested.
        query = make_star_query(small_schema, 5)
        counters = SearchCounters(BUDGET, Timer().start())
        space = make_planspace(
            query,
            small_stats,
            DEFAULT_COST_MODEL,
            counters,
            kernel="parallel",
            level_parallel=True,
            bound="dpconv",
        )
        try:
            assert type(space).__name__ == "PlanSpace"
        finally:
            space.release()

    def test_dpconv_kernel_honors_bound_argument(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        counters = SearchCounters(BUDGET, Timer().start())
        space = make_planspace(
            query,
            small_stats,
            COUT_COST_MODEL,
            counters,
            kernel="dpconv",
            bound="dpconv",
        )
        try:
            assert isinstance(space, DPconvPlanSpace)
        finally:
            space.release()
