"""Tier-1 gate: the repository's own ``src/`` tree lints clean.

This is the enforcement point for every invariant in
``docs/static-analysis.md`` — a change that introduces an upward import,
an inline span name, an uncharged enumeration loop, etc. fails here with
the exact ``path:line:col CODE message`` to fix. Grandfathered findings
belong in a committed baseline; this repo keeps none, so the gate is a
plain empty-list assertion.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_tree_lints_clean():
    findings = run_lint([REPO_ROOT / "src"])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"repro.lint found violations:\n{rendered}"


def test_every_checker_registered():
    # The gate above only means something if all eight checkers ran.
    from repro.lint import CHECKER_CODES

    assert CHECKER_CODES() == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008",
    ]
