"""Tier-1 gate: the repository's own ``src/`` tree lints clean.

This is the enforcement point for every invariant in
``docs/static-analysis.md`` — a change that introduces an upward import,
an inline span name, an uncharged enumeration loop, etc. fails here with
the exact ``path:line:col CODE message`` to fix. Grandfathered findings
belong in a committed baseline; this repo keeps none, so the gate is a
plain empty-list assertion.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import run_lint

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_src_tree_lints_clean():
    findings = run_lint([REPO_ROOT / "src"])
    rendered = "\n".join(f.render() for f in findings)
    assert findings == [], f"repro.lint found violations:\n{rendered}"


def test_every_checker_registered():
    # The gate above only means something if all twelve checkers ran.
    from repro.lint import CHECKER_CODES

    assert CHECKER_CODES() == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007",
        "RL008", "RL009", "RL010", "RL011", "RL012",
    ]


@pytest.mark.perf
def test_lint_wall_time_within_2x_of_legacy():
    """The dataflow checkers must not double full-repo lint time.

    Compares a full run (RL001–RL012) against the pre-PR checker set
    (RL001–RL008) on this repository's ``src/`` tree — each timed as
    best-of-two with a fresh project load, so the CFG cache cannot
    flatter the new checkers.
    """
    import time

    from repro.lint import all_checkers, load_project, run_checkers

    legacy = [c for c in all_checkers() if c.code <= "RL008"]
    every = all_checkers()

    def best_of_two(checkers) -> float:
        best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            project = load_project([REPO_ROOT / "src"])
            run_checkers(project, checkers)
            best = min(best, time.perf_counter() - start)
        return best

    legacy_time = best_of_two(legacy)
    full_time = best_of_two(every)
    # A small floor keeps the ratio meaningful on very fast machines.
    budget = 2.0 * max(legacy_time, 0.05)
    assert full_time <= budget, (
        f"full lint {full_time:.3f}s exceeds 2x legacy "
        f"{legacy_time:.3f}s"
    )
