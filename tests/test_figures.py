"""Tests for the figure experiments' rendering helpers."""

from __future__ import annotations

from repro.bench.experiments.figure_1_2 import _ascii_scatter


class TestAsciiScatter:
    def test_orders_by_effort(self):
        points = {
            "DP": (1e6, 1.0),
            "SDP": (1e4, 1.05),
            "IDP": (1e5, 1.4),
        }
        plot = _ascii_scatter(points)
        lines = plot.splitlines()
        assert "SDP" in lines[1]
        assert "IDP" in lines[2]
        assert "DP" in lines[3]

    def test_single_point(self):
        plot = _ascii_scatter({"SDP": (123.0, 1.0)})
        assert "SDP" in plot

    def test_rho_printed(self):
        plot = _ascii_scatter({"SDP": (10.0, 1.2345)})
        assert "rho=1.23" in plot

    def test_log_positioning(self):
        points = {"a": (10.0, 1.0), "b": (1000.0, 1.0), "c": (100.0, 1.0)}
        plot = _ascii_scatter(points)
        lines = {line.strip().split()[1]: len(line) - len(line.lstrip())
                 for line in plot.splitlines()[1:]}
        # log-scale: c sits midway between a and b
        assert lines["a"] < lines["c"] < lines["b"]
        assert abs((lines["c"] - lines["a"]) - (lines["b"] - lines["c"])) <= 1
