"""Unit tests for the Table 3.3 feasibility-frontier search."""

from __future__ import annotations

from repro.bench.experiments import table_3_3
from repro.bench.experiments.common import ExperimentSettings


class _FakeResult:
    elapsed_seconds = 1.0
    modeled_memory_mb = 10.0


def _patched_frontier(monkeypatch, threshold: int):
    """Frontier where sizes <= threshold are feasible."""

    def fake_attempt(settings, technique, size):
        return _FakeResult() if size <= threshold else None

    monkeypatch.setattr(table_3_3, "_attempt", fake_attempt)


class TestFrontierSearch:
    def test_finds_exact_boundary(self, monkeypatch):
        _patched_frontier(monkeypatch, threshold=17)
        size, result = table_3_3.frontier(
            ExperimentSettings(), "DP", 10, 30
        )
        assert size == 17
        assert result is not None

    def test_all_feasible_returns_cap(self, monkeypatch):
        _patched_frontier(monkeypatch, threshold=99)
        size, _result = table_3_3.frontier(ExperimentSettings(), "SDP", 10, 30)
        assert size == 30

    def test_lower_bound_infeasible(self, monkeypatch):
        _patched_frontier(monkeypatch, threshold=5)
        size, result = table_3_3.frontier(ExperimentSettings(), "DP", 10, 30)
        assert size is None and result is None

    def test_boundary_at_lower_bound(self, monkeypatch):
        _patched_frontier(monkeypatch, threshold=10)
        size, _result = table_3_3.frontier(ExperimentSettings(), "DP", 10, 30)
        assert size == 10

    def test_probe_count_is_logarithmic(self, monkeypatch):
        calls = []

        def fake_attempt(settings, technique, size):
            calls.append(size)
            return _FakeResult() if size <= 23 else None

        monkeypatch.setattr(table_3_3, "_attempt", fake_attempt)
        size, _ = table_3_3.frontier(ExperimentSettings(), "DP", 10, 40)
        assert size == 23
        assert len(calls) <= 8  # log2(31) + initial probe


def test_cli_lists_extensions(capsys):
    from repro.bench.cli import main

    main(["list"])
    out = capsys.readouterr().out
    for name in (
        "ext-baselines",
        "ext-strong-skyline",
        "ext-skew",
        "ext-feature-vector",
        "ext-partitioning",
        "ext-estimation",
        "ext-topologies",
    ):
        assert name in out
