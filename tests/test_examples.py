"""Integration tests: every example script runs end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_examples_directory_contents():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 3


def test_quickstart():
    out = run_example("quickstart.py")
    assert "SDP found a plan" in out
    assert "SeqScan" in out or "IndexScan" in out


def test_custom_schema():
    out = run_example("custom_schema.py")
    assert "SELECT" in out
    assert "orders" in out
    assert "SDP plan" in out


def test_interesting_orders():
    out = run_example("interesting_orders.py")
    assert "ORDER BY" in out
    assert "x the optimum" in out


def test_tpch_like_star_chain():
    out = run_example("tpch_like_star_chain.py", "2")
    assert "Star-Chain-15" in out
    assert "rho" in out


@pytest.mark.slow
def test_scaling_study():
    out = run_example("scaling_study.py", "12")
    assert "still feasible" in out


def test_sql_to_execution():
    out = run_example("sql_to_execution.py")
    assert "executed:" in out
    assert "q-error" in out
