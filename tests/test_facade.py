"""The ``repro.optimize()`` facade and the shared result protocol."""

from __future__ import annotations

import pytest

import repro
import repro.obs as obs
from repro.core.base import SearchBudget
from repro.errors import OptimizationBudgetExceeded, OptimizationError
from tests.conftest import make_star_query


@pytest.fixture(autouse=True)
def _pristine_obs():
    obs.reset()
    yield
    obs.reset()


class TestTechniqueResolution:
    @pytest.mark.parametrize(
        ("spelled", "resolved"),
        [
            ("sdp", "SDP"),
            ("SDP", "SDP"),
            ("Sdp", "SDP"),
            ("dp", "DP"),
            ("idp(7)", "IDP(7)"),
            ("IDP(4)", "IDP(4)"),
            ("sdp/global", "SDP/Global"),
            ("goo", "GOO"),
            ("geqo", "GEQO"),
            (" sdp ", "SDP"),
        ],
    )
    def test_case_insensitive(self, spelled, resolved):
        assert repro.resolve_technique(spelled) == resolved

    def test_unknown_technique_lists_known(self):
        with pytest.raises(OptimizationError, match="known:"):
            repro.resolve_technique("postgres")


class TestFacade:
    def test_default_matches_direct_sdp(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        facade = repro.optimize(query, stats=small_stats)
        direct = repro.SDPOptimizer().optimize(query, small_stats)
        assert facade.technique == "SDP"
        assert facade.cost == direct.cost
        assert facade.plans_costed == direct.plans_costed
        assert repro.explain(facade.tree(query)) == repro.explain(
            direct.tree(query)
        )

    def test_technique_matches_direct_dp(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        facade = repro.optimize(query, technique="dp", stats=small_stats)
        direct = repro.DynamicProgrammingOptimizer().optimize(
            query, small_stats
        )
        assert facade.cost == direct.cost
        assert facade.plans_costed == direct.plans_costed

    def test_numeric_budget_is_seconds(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        result = repro.optimize(query, stats=small_stats, budget=30.0)
        assert result.plans_costed > 0

    def test_budget_object_passthrough(self, small_schema, small_stats):
        query = make_star_query(small_schema, 8)
        with pytest.raises(OptimizationBudgetExceeded):
            repro.optimize(
                query,
                technique="dp",
                stats=small_stats,
                budget=SearchBudget(max_plans_costed=10),
            )

    @pytest.mark.parametrize("bad", [0, -2.5, True, "fast"])
    def test_invalid_budget_rejected(self, small_schema, small_stats, bad):
        query = make_star_query(small_schema, 5)
        with pytest.raises(OptimizationError):
            repro.optimize(query, stats=small_stats, budget=bad)

    def test_robust_degrades_instead_of_raising(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 8)
        tight = SearchBudget(max_plans_costed=10)
        result = repro.optimize(
            query, technique="dp", stats=small_stats,
            budget=tight, robust=True,
        )
        assert result.degraded
        assert result.technique.startswith("Robust(")
        assert result.attempts[0].outcome == "budget-exceeded"

    def test_trace_attaches_recording(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        result = repro.optimize(query, stats=small_stats, trace=True)
        assert result.trace is not None
        assert result.trace.find("optimize")
        assert result.trace.find("sdp.level")
        assert "sdp.level" in result.trace.explain()
        assert "Plans costed" in result.trace.profile()
        # Tracing never leaks into steady state.
        assert not obs.enabled()

    def test_untraced_result_has_no_trace(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        result = repro.optimize(query, stats=small_stats)
        assert result.trace is None

    def test_service_routing(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        service = repro.OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        cold = repro.optimize(query, service=service)
        warm = repro.optimize(query, service=service)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.cost == cold.cost

    def test_service_conflicts_rejected(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        service = repro.OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        for kwargs in (
            {"robust": True},
            {"budget": 1.0},
            {"cost_model": repro.DEFAULT_COST_MODEL},
        ):
            with pytest.raises(OptimizationError):
                repro.optimize(query, service=service, **kwargs)


class TestSqlFirst:
    def _sql(self, small_schema):
        names = small_schema.relation_names
        return (
            f"SELECT * FROM {names[0]}, {names[1]} "
            f"WHERE {names[0]}.c1 = {names[1]}.c2 "
            f"AND {names[0]}.c3 < 40 ORDER BY {names[1]}.c2"
        )

    def test_sql_text_matches_parsed_query(self, small_schema, small_stats):
        sql = self._sql(small_schema)
        query = repro.parse_sql(small_schema, sql)
        from_sql = repro.optimize(sql, schema=small_schema, stats=small_stats)
        from_query = repro.optimize(query, stats=small_stats)
        assert from_sql.cost == from_query.cost
        assert from_sql.plans_costed == from_query.plans_costed
        assert repr(from_sql.plan) == repr(from_query.plan)

    def test_selection_free_sql_matches_too(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        sql = repro.render_sql(query)
        from_sql = repro.optimize(sql, schema=small_schema, stats=small_stats)
        from_query = repro.optimize(query, stats=small_stats)
        assert from_sql.cost == from_query.cost
        assert from_sql.plans_costed == from_query.plans_costed

    def test_provenance_attached(self, small_schema, small_stats):
        sql = self._sql(small_schema)
        result = repro.optimize(sql, schema=small_schema, stats=small_stats)
        assert result.sql == sql
        assert result.query is not None
        assert result.query.selections and result.query.order_by
        assert repro.explain(result.tree())  # no query argument needed
        from_query = repro.optimize(
            repro.parse_sql(small_schema, sql), stats=small_stats
        )
        assert from_query.sql is None
        assert from_query.query is not None

    def test_text_without_parse_target_rejected(self, small_schema):
        with pytest.raises(OptimizationError, match="parse target"):
            repro.optimize(self._sql(small_schema))

    def test_schema_with_query_rejected(self, small_schema, small_stats):
        query = make_star_query(small_schema, 5)
        with pytest.raises(OptimizationError, match="SQL text"):
            repro.optimize(query, schema=small_schema, stats=small_stats)

    def test_malformed_sql_raises_query_error(self, small_schema):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            repro.optimize("SELECT FROM WHERE", schema=small_schema)

    def test_text_through_service(self, small_schema):
        sql = self._sql(small_schema)
        service = repro.OptimizationService(technique="SDP")
        service.analyze(small_schema)
        cold = repro.optimize(sql, service=service)
        warm = repro.optimize(sql, service=service)
        assert not cold.cache_hit and warm.cache_hit
        assert cold.sql == warm.sql == sql
        assert warm.query is not None

    def test_result_without_provenance_needs_query_for_tree(
        self, small_schema, small_stats
    ):
        query = make_star_query(small_schema, 5)
        result = repro.SDPOptimizer().optimize(query, small_stats)
        if result.query is None:
            with pytest.raises(OptimizationError):
                result.tree()
        else:
            assert result.tree() is not None


class TestPlanResultProtocol:
    def test_every_path_satisfies_protocol(self, small_schema, small_stats):
        query = make_star_query(small_schema, 6)
        service = repro.OptimizationService(technique="SDP")
        service.install_statistics(small_stats)
        results = [
            repro.optimize(query, stats=small_stats),
            repro.optimize(query, stats=small_stats, robust=True),
            repro.optimize(query, service=service),
            repro.SDPOptimizer().optimize(query, small_stats),
            repro.RobustOptimizer().optimize(query, small_stats),
        ]
        for result in results:
            assert isinstance(result, repro.PlanResult)
            assert isinstance(result.degraded, bool)
            assert result.plans_costed >= 0
            assert result.cost > 0
            assert result.trace is None

    def test_protocol_rejects_strangers(self):
        assert not isinstance(object(), repro.PlanResult)

    def test_robust_result_single_degraded_field(self):
        from dataclasses import fields

        from repro.robust import RobustResult

        names = [f.name for f in fields(RobustResult)]
        assert names.count("degraded") == 1
