"""Tests for repro.plans: records, JCRs, ordering, trees, explain, validate."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.plans import (
    HASH_JOIN,
    INDEX_SCAN,
    JCR,
    MERGE_JOIN,
    NESTLOOP,
    SEQ_SCAN,
    SORT,
    PlanRecord,
    build_plan_tree,
    explain,
    useful_orders,
    validate_plan,
)
from repro.plans.ordering import is_useful_order
from repro.query.joingraph import JoinGraph


def scan(rel, rows=100.0, cost=10.0, order=None):
    return PlanRecord(
        1 << rel, rows, cost, SEQ_SCAN if order is None else INDEX_SCAN,
        order=order, rel=rel,
    )


def join(left, right, rows=50.0, cost=None, method=HASH_JOIN, order=None):
    if cost is None:
        cost = left.cost + right.cost + 5.0
    return PlanRecord(
        left.mask | right.mask, rows, cost, method,
        order=order, left=left, right=right,
    )


@pytest.fixture
def graph():
    return JoinGraph(
        ["A", "B", "C"],
        [("A", "x", "B", "y"), ("B", "z", "C", "w")],
    )


class TestPlanRecord:
    def test_unknown_method_rejected(self):
        with pytest.raises(PlanError):
            PlanRecord(1, 1.0, 1.0, "FlyingJoin")

    def test_negative_cost_rejected(self):
        with pytest.raises(PlanError):
            PlanRecord(1, 1.0, -1.0, SEQ_SCAN, rel=0)

    def test_leaf_relations_order(self):
        tree = join(join(scan(0), scan(1)), scan(2))
        assert tree.leaf_relations() == [0, 1, 2]

    def test_depth_and_node_count(self):
        tree = join(join(scan(0), scan(1)), scan(2))
        assert tree.depth() == 3
        assert tree.node_count() == 5
        assert scan(0).depth() == 1

    def test_flags(self):
        assert scan(0).is_scan and not scan(0).is_join
        j = join(scan(0), scan(1))
        assert j.is_join and not j.is_scan


class TestJCR:
    def test_empty_mask_rejected(self):
        with pytest.raises(PlanError):
            JCR(0, 1.0, 0.0)

    def test_best_requires_plans(self):
        jcr = JCR(0b11, 100.0, -1.0)
        with pytest.raises(PlanError):
            _ = jcr.best

    def test_keeps_cheapest_per_order(self):
        jcr = JCR(1, 100.0, 0.0)
        jcr.add(scan(0, cost=10.0))
        jcr.add(scan(0, cost=5.0))
        jcr.add(scan(0, cost=7.0))
        assert jcr.best.cost == 5.0
        assert jcr.plan_count == 1

    def test_separate_order_slots(self):
        jcr = JCR(1, 100.0, 0.0)
        jcr.add(scan(0, cost=5.0))
        jcr.add(scan(0, cost=20.0, order=3))
        assert jcr.plan_count == 2
        assert jcr.plan_for_order(3).cost == 20.0
        assert jcr.plan_for_order(None).cost == 5.0
        assert jcr.best.cost == 5.0

    def test_useless_order_demoted(self):
        jcr = JCR(1, 100.0, 0.0)
        jcr.add(scan(0, cost=5.0, order=7), useful=set())
        assert jcr.plan_for_order(7) is None
        assert jcr.plan_for_order(None) is not None

    def test_mask_mismatch_rejected(self):
        jcr = JCR(0b10, 100.0, 0.0)
        with pytest.raises(PlanError):
            jcr.add(scan(0))

    def test_feature_vector(self):
        jcr = JCR(1, 123.0, -4.5)
        jcr.add(scan(0, cost=9.0))
        rows, cost, sel = jcr.feature_vector()
        assert (rows, cost, sel) == (123.0, 9.0, -4.5)


class TestUsefulOrders:
    def test_boundary_orders_useful(self, graph):
        # eclass of A-B is useful for {A} (B outside) but not for {A,B,C}
        eclass = graph.predicates[0].eclass
        assert is_useful_order(graph, 0b001, eclass)
        assert not is_useful_order(graph, 0b111, eclass)

    def test_order_by_always_useful(self, graph):
        eclass = graph.predicates[0].eclass
        assert is_useful_order(graph, 0b111, eclass, order_by_eclass=eclass)

    def test_absent_relation_order_useless(self, graph):
        eclass = graph.predicates[0].eclass  # members A, B
        assert not is_useful_order(graph, 0b100, eclass)

    def test_useful_orders_set(self, graph):
        useful = useful_orders(graph, 0b011)
        eclass_bc = graph.predicates[1].eclass
        assert eclass_bc in useful


class TestBuildTreeAndExplain:
    def test_round_trip(self, graph):
        record = join(join(scan(0), scan(1)), scan(2))
        node = build_plan_tree(record, graph)
        assert sorted(node.leaf_relations()) == ["A", "B", "C"]
        assert node.rows == 50.0

    def test_sort_node(self, graph):
        base = scan(0)
        sort = PlanRecord(1, 100.0, 20.0, SORT, order=0, left=base)
        node = build_plan_tree(sort, graph)
        assert node.method == SORT
        assert len(node.children) == 1

    def test_order_column_label(self, graph):
        eclass = graph.predicates[0].eclass
        record = join(scan(0), scan(1), method=MERGE_JOIN, order=eclass)
        node = build_plan_tree(record, graph)
        assert node.order_column is not None
        assert "." in node.order_column

    def test_explain_text(self, graph):
        record = join(join(scan(0), scan(1)), scan(2))
        text = explain(build_plan_tree(record, graph))
        assert "SeqScan on A" in text
        assert text.count("\n") == 4
        assert "HashJoin" in text

    def test_walk(self, graph):
        record = join(scan(0), scan(1))
        node = build_plan_tree(record, graph)
        assert len(list(node.walk())) == 3

    def test_broken_scan_rejected(self, graph):
        bad = PlanRecord(1, 1.0, 1.0, SEQ_SCAN)  # no rel
        with pytest.raises(PlanError):
            build_plan_tree(bad, graph)


class TestValidatePlan:
    def test_valid_plan_passes(self, graph):
        record = join(join(scan(0), scan(1)), scan(2))
        validate_plan(record, graph)

    def test_wrong_mask_rejected(self, graph):
        record = join(scan(0), scan(1))
        with pytest.raises(PlanError):
            validate_plan(record, graph)  # missing C

    def test_duplicate_relation_rejected(self, graph):
        dup = PlanRecord(
            0b111, 10.0, 99.0, HASH_JOIN,
            left=join(scan(0), scan(1)),
            right=PlanRecord(0b100, 5.0, 5.0, SEQ_SCAN, rel=2),
        )
        # hand-craft an overlap: right child mask lies about containing A
        dup.right = join(scan(0), scan(2))
        dup.right.mask = 0b100
        with pytest.raises(PlanError):
            validate_plan(dup, graph)

    def test_cartesian_rejected(self):
        graph = JoinGraph(
            ["A", "B", "C"],
            [("A", "x", "B", "y"), ("B", "z", "C", "w")],
        )
        cartesian = join(scan(0), scan(2))  # A-C not joined
        cartesian = join(cartesian, scan(1))
        with pytest.raises(PlanError):
            validate_plan(cartesian, graph)
        validate_plan(cartesian, graph, allow_cartesian=True)

    def test_cost_monotonicity_enforced(self, graph):
        cheap_parent = join(scan(0, cost=50.0), scan(1, cost=50.0), cost=10.0)
        record = join(cheap_parent, scan(2))
        with pytest.raises(PlanError):
            validate_plan(record, graph)

    def test_sort_must_be_unary(self, graph):
        bad = PlanRecord(
            0b11, 10.0, 99.0, SORT, left=scan(0), right=scan(1)
        )
        with pytest.raises(PlanError):
            validate_plan(bad, graph, expected_mask=0b11)
