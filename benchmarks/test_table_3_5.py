"""Benchmark: regenerate Table 3.5 (ordered star-chain plan quality)."""

from repro.bench.experiments import table_3_5


def test_table_3_5(benchmark, settings):
    report = benchmark.pedantic(
        table_3_5.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Ordered Star-Chain" in report
