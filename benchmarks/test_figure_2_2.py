"""Benchmark: regenerate Figure 2.2 (SDP iteration walk-through)."""

from repro.bench.experiments import figure_2_2


def test_figure_2_2(benchmark, settings):
    report = benchmark.pedantic(
        figure_2_2.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "hubs" in report and "Survivors" in report
