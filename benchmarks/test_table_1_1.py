"""Benchmark: regenerate Table 1.1 (Star-Chain-15 plan quality)."""

from repro.bench.experiments import table_1_1


def test_table_1_1(benchmark, settings):
    report = benchmark.pedantic(
        table_1_1.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Table 1.1" in report
    assert "SDP" in report and "IDP(7)" in report
