"""Benchmark: regenerate Table 1.3 (Star-Chain-23 scaled quality)."""

from repro.bench.experiments import table_1_3


def test_table_1_3(benchmark, settings):
    report = benchmark.pedantic(
        table_1_3.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Star-Chain-23" in report or "star-chain-23" in report
