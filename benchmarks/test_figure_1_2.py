"""Benchmark: regenerate Figure 1.2 (quality vs effort trade-off)."""

from repro.bench.experiments import figure_1_2


def test_figure_1_2(benchmark, settings):
    report = benchmark.pedantic(
        figure_1_2.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "rho" in report and "effort" in report
