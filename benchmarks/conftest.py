"""Shared fixtures for the benchmark suite.

Every ``benchmarks/test_table_*.py`` regenerates one paper table/figure at a
reduced scale (fewer instances, tighter wall-clock budget) so the whole
suite stays in the minutes range. Full-scale regeneration is the CLI's job::

    sdp-bench all --instances 30

The ``settings`` fixture is session-scoped and the experiment layer memoizes
workload-cell comparisons, so tables sharing a cell (e.g. 1.1/1.2) measure
the shared work only once.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments.common import ExperimentSettings

#: Reduced-scale settings used by every benchmark.
BENCH_SETTINGS = ExperimentSettings(
    instances=2,
    heavy_instances=1,
    max_seconds=15.0,
)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return BENCH_SETTINGS
