"""Benchmark: regenerate Table 3.1 (star plan quality, 15/20/23)."""

from repro.bench.experiments import table_3_1


def test_table_3_1(benchmark, settings):
    report = benchmark.pedantic(
        table_3_1.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "star-15" in report and "star-23" in report
