"""Benchmark: regenerate Table 3.6 (local vs global pruning)."""

from repro.bench.experiments import table_3_6


def test_table_3_6(benchmark, settings):
    report = benchmark.pedantic(
        table_3_6.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "SDP/Global" in report
