"""Benchmark: regenerate Table 3.2 (star overheads, 15/20/23)."""

from repro.bench.experiments import table_3_2


def test_table_3_2(benchmark, settings):
    report = benchmark.pedantic(
        table_3_2.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Costing" in report
