"""Benchmark: regenerate Table 3.4 (ordered star plan quality)."""

from repro.bench.experiments import table_3_4


def test_table_3_4(benchmark, settings):
    report = benchmark.pedantic(
        table_3_4.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Ordered Star" in report
