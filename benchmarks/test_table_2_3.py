"""Benchmark: regenerate Table 2.3 (skyline Option 1 vs Option 2)."""

from repro.bench.experiments import table_2_3


def test_table_2_3(benchmark, settings):
    report = benchmark.pedantic(
        table_2_3.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Option 1" in report and "Option 2" in report
