"""Benchmark: regenerate Table 1.2 (Star-Chain-15 overheads)."""

from repro.bench.experiments import table_1_2


def test_table_1_2(benchmark, settings):
    report = benchmark.pedantic(
        table_1_2.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Memory" in report and "Costing" in report
