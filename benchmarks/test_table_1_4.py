"""Benchmark: regenerate Table 1.4 (Star-Chain-23 scaled overheads)."""

from repro.bench.experiments import table_1_4


def test_table_1_4(benchmark, settings):
    report = benchmark.pedantic(
        table_1_4.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Costing" in report
