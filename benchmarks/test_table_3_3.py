"""Benchmark: regenerate Table 3.3 (maximum star scale-up).

Reduced search ranges bound the benchmark's runtime; the CLI runs the full
frontier search.
"""

from repro.bench.experiments import table_3_3

BENCH_RANGES = (
    ("DP", 8, 14),
    ("IDP(7)", 10, 18),
    ("IDP(4)", 12, 26),
    ("SDP", 16, 40),
)


def test_table_3_3(benchmark, settings):
    report = benchmark.pedantic(
        table_3_3.run,
        args=(settings,),
        kwargs={"ranges": BENCH_RANGES},
        rounds=1,
        iterations=1,
    )
    print("\n" + report)
    assert "Max star relations" in report
