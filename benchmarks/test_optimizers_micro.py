"""Micro-benchmarks of the optimizers themselves on one fixed query.

Unlike the table benchmarks (which time whole experiments once), these use
pytest-benchmark's statistics over repeated runs of a single optimization,
giving a stable per-optimizer latency signal for regression tracking.
"""

import pytest

from repro.bench.experiments.common import paper_catalog
from repro.bench.workloads import WorkloadSpec, make_query
from repro.core.registry import make_optimizer


@pytest.fixture(scope="module")
def star_chain_12(settings):
    schema, stats = paper_catalog(settings)
    spec = WorkloadSpec(topology="star-chain", relation_count=12, seed=1)
    return make_query(spec, schema, 0), stats


@pytest.mark.parametrize("technique", ["DP", "IDP(7)", "IDP(4)", "SDP", "GOO"])
def test_optimize_star_chain_12(benchmark, settings, star_chain_12, technique):
    query, stats = star_chain_12
    optimizer = make_optimizer(technique, budget=settings.budget())
    result = benchmark.pedantic(
        optimizer.optimize, args=(query, stats), rounds=3, iterations=1
    )
    assert result.cost > 0
