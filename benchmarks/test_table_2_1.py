"""Benchmark: regenerate Table 2.1 (DP overheads, chain vs star).

Reduced sweep: chains to 20 relations and stars to 12, so the benchmark
stays fast; the CLI regenerates the full 28/16 sweep.
"""

from repro.bench.experiments import table_2_1


def test_table_2_1(benchmark, settings, monkeypatch):
    monkeypatch.setattr(table_2_1, "CHAIN_SIZES", (4, 8, 12, 16, 20))
    monkeypatch.setattr(table_2_1, "STAR_SIZES", (4, 8, 12))
    report = benchmark.pedantic(
        table_2_1.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Chain Time" in report
