"""Benchmarks: the extension experiments (beyond the paper)."""

from repro.bench.experiments import ext_baselines, ext_skew, ext_strong_skyline


def test_ext_baselines(benchmark, settings):
    report = benchmark.pedantic(
        ext_baselines.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "GEQO" in report and "2PO" in report


def test_ext_strong_skyline(benchmark, settings):
    report = benchmark.pedantic(
        ext_strong_skyline.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Strong (2-dominant)" in report


def test_ext_skew(benchmark, settings):
    report = benchmark.pedantic(
        ext_skew.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "Skewed" in report


def test_ext_feature_vector(benchmark, settings):
    from repro.bench.experiments import ext_feature_vector

    report = benchmark.pedantic(
        ext_feature_vector.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "RC only" in report


def test_ext_partitioning(benchmark, settings):
    from repro.bench.experiments import ext_partitioning

    report = benchmark.pedantic(
        ext_partitioning.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "SDP(parent)" in report


def test_ext_estimation(benchmark, settings):
    from repro.bench.experiments import ext_estimation

    report = benchmark.pedantic(
        ext_estimation.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "result agreement" in report


def test_ext_topologies(benchmark, settings):
    from repro.bench.experiments import ext_topologies

    report = benchmark.pedantic(
        ext_topologies.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "clique" in report
