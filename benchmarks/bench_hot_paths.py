"""Hot-path benchmark harness — thin CLI over :mod:`repro.bench.hotpaths`.

The scenarios, timing policy, and the regression-guard comparison live in
the package (``src/repro/bench/hotpaths.py``) so the ``sdp-bench --check``
command and the ``perf``-marked tests share one implementation. This
script keeps the historical entry point::

    python benchmarks/bench_hot_paths.py                  # full run
    python benchmarks/bench_hot_paths.py --repeats 1 ...  # smoke run

Results go to ``BENCH_optimize.json`` (``--output``), which is committed;
compare your run against it with ``sdp-bench --check BENCH_optimize.json``,
expecting machine-dependent absolute numbers but stable counters.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench.hotpaths import run_harness  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_optimize.json"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="runs per scenario (default 5)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the grid scenario "
        "(default max(2, min(4, cpus)))",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON report (default repo-root "
        "BENCH_optimize.json)",
    )
    args = parser.parse_args(argv)

    report = run_harness(repeats=args.repeats, workers=args.workers)
    path = os.path.abspath(args.output)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    for name, bench in report["benchmarks"].items():
        keys = (
            "median_seconds",
            "serial_median_seconds",
            "parallel_median_seconds",
            "cold_median_seconds",
            "warm_median_seconds",
            "mode",
            "speedup",
            "plans_costed",
        )
        summary = ", ".join(
            f"{k}={bench[k]}" for k in keys if k in bench and not isinstance(bench[k], dict)
        )
        print(f"{name:14s} {summary}")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
