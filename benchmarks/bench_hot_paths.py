"""Hot-path benchmark harness — tracks the repo's optimizer perf trajectory.

Times the scenarios this codebase optimizes hardest:

* ``dp_star_12`` — exhaustive DP on a 12-relation star (the join-graph
  memoization and plan-space hot loops dominate here);
* ``sdp_star_25`` — SDP on a 25-relation star (the scale DP cannot reach;
  exercises skyline pruning plus the same hot paths);
* ``grid_workers`` — a full ``run_comparison`` grid serially and with a
  process pool, asserting the aggregated outcomes are identical and
  recording the speedup;
* ``plan_cache`` — cold vs. warm :class:`repro.service.OptimizationService`
  lookups on a repeated query.

Each scenario reports the **median** wall-clock over ``--repeats`` runs
(medians shrug off one-off scheduler noise) plus the deterministic search
counters (``plans_costed``), which must not drift when only performance
work lands. Results go to ``BENCH_optimize.json`` (``--output``) so PRs
can diff perf against the committed trajectory::

    python benchmarks/bench_hot_paths.py                  # full run
    python benchmarks/bench_hot_paths.py --repeats 1 ...  # smoke run

The file is committed; compare your run's medians against it, expecting
machine-dependent absolute numbers but stable counters and ratios.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench.runner import run_comparison  # noqa: E402
from repro.bench.workloads import WorkloadSpec, make_query  # noqa: E402
from repro.catalog.schema import SchemaBuilder, paper_schema  # noqa: E402
from repro.catalog.statistics import analyze  # noqa: E402
from repro.core.base import SearchBudget  # noqa: E402
from repro.core.registry import make_optimizer  # noqa: E402
from repro.service import OptimizationService  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_optimize.json"
)
BUDGET = SearchBudget(max_seconds=120.0)


def _timed(fn, repeats: int):
    """Median wall-clock over ``repeats`` calls plus the last result."""
    samples, result = [], None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples), samples, result


def bench_optimizer(technique: str, spec: WorkloadSpec, schema, stats, repeats: int):
    query = make_query(spec, schema, 0)
    optimizer = make_optimizer(technique, budget=BUDGET)
    median, samples, result = _timed(
        lambda: optimizer.optimize(query, stats), repeats
    )
    return {
        "technique": technique,
        "workload": spec.label,
        "median_seconds": round(median, 6),
        "samples_seconds": [round(s, 6) for s in samples],
        "plans_costed": result.plans_costed,
        "cost": result.cost,
    }


def bench_grid(schema, stats, repeats: int, workers: int):
    spec = WorkloadSpec("star-chain", 10)
    techniques = ["DP", "SDP", "GOO"]

    def run(n):
        return run_comparison(
            spec, schema, techniques, instances=4, stats=stats,
            budget=BUDGET, workers=n,
        )

    serial_median, serial_samples, serial = _timed(lambda: run(1), repeats)
    parallel_median, parallel_samples, parallel = _timed(
        lambda: run(workers), repeats
    )
    identical = all(
        serial.outcomes[name].ratios == parallel.outcomes[name].ratios
        and serial.outcomes[name].plans_costed
        == parallel.outcomes[name].plans_costed
        for name in serial.outcomes
    )
    return {
        "workload": spec.label,
        "techniques": techniques,
        "instances": 4,
        "workers": workers,
        "serial_median_seconds": round(serial_median, 6),
        "serial_samples_seconds": [round(s, 6) for s in serial_samples],
        "parallel_median_seconds": round(parallel_median, 6),
        "parallel_samples_seconds": [round(s, 6) for s in parallel_samples],
        "speedup": round(serial_median / parallel_median, 3),
        "identical_outcomes": identical,
        "plans_costed": {
            name: serial.outcomes[name].plans_costed for name in serial.outcomes
        },
    }


def bench_plan_cache(schema, stats, repeats: int):
    query = make_query(WorkloadSpec("star", 10), schema, 0)
    cold_samples, warm_samples = [], []
    for _ in range(repeats):
        service = OptimizationService(technique="SDP", budget=BUDGET)
        service.install_statistics(stats)
        cold = service.optimize(query)
        warm = service.optimize(query)
        assert not cold.cache_hit and warm.cache_hit
        assert warm.cost == cold.cost
        cold_samples.append(cold.elapsed_seconds)
        warm_samples.append(warm.elapsed_seconds)
    cold_median = statistics.median(cold_samples)
    warm_median = statistics.median(warm_samples)
    return {
        "workload": "star-10",
        "technique": "SDP",
        "cold_median_seconds": round(cold_median, 6),
        "warm_median_seconds": round(warm_median, 6),
        "speedup": round(cold_median / warm_median, 1),
    }


def run_harness(repeats: int = 5, workers: int | None = None) -> dict:
    """Run every scenario and return the report dictionary."""
    # At least 2 so the grid scenario really crosses process boundaries
    # (speedup on a single-core box is then expectedly ~1x or below, but
    # outcome identity is still exercised and recorded).
    workers = workers or max(2, min(4, os.cpu_count() or 1))
    schema = paper_schema(seed=0)
    stats = analyze(schema)
    # The paper's 24-column schema cannot anchor a 25-spoke star (each
    # spoke consumes a distinct hub column), so the SDP scale point uses
    # a wider synthetic catalog, as the scale-up experiments do.
    wide_schema = SchemaBuilder(
        seed=0, relation_count=25, column_count=27, name="bench-wide-25"
    ).build()
    wide_stats = analyze(wide_schema)

    report = {
        "generated_unix": int(time.time()),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "repeats": repeats,
        "benchmarks": {
            "dp_star_12": bench_optimizer(
                "DP", WorkloadSpec("star", 12), schema, stats, repeats
            ),
            "sdp_star_25": bench_optimizer(
                "SDP", WorkloadSpec("star", 25), wide_schema, wide_stats, repeats
            ),
            "grid_workers": bench_grid(schema, stats, repeats, workers),
            "plan_cache": bench_plan_cache(schema, stats, repeats),
        },
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5, help="runs per scenario (default 5)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the grid scenario "
        "(default max(2, min(4, cpus)))",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=DEFAULT_OUTPUT,
        help="where to write the JSON report (default repo-root "
        "BENCH_optimize.json)",
    )
    args = parser.parse_args(argv)

    report = run_harness(repeats=args.repeats, workers=args.workers)
    path = os.path.abspath(args.output)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    for name, bench in report["benchmarks"].items():
        keys = (
            "median_seconds",
            "serial_median_seconds",
            "parallel_median_seconds",
            "cold_median_seconds",
            "warm_median_seconds",
            "speedup",
            "plans_costed",
        )
        summary = ", ".join(
            f"{k}={bench[k]}" for k in keys if k in bench and not isinstance(bench[k], dict)
        )
        print(f"{name:14s} {summary}")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
