"""Benchmark: regenerate Table 2.2 (multi-way skyline worked example)."""

from repro.bench.experiments import table_2_2


def test_table_2_2(benchmark, settings):
    report = benchmark.pedantic(
        table_2_2.run, args=(settings,), rounds=1, iterations=1
    )
    print("\n" + report)
    assert "matches the paper" in report
